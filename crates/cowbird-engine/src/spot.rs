//! Cowbird-Spot: the offload engine on a general-purpose core (paper §6).
//!
//! "These compute resources can come from many different sources, e.g., the
//! ARM cores of a SmartNIC, the management CPU of a harvested-memory VM, or
//! a separate spot instance dedicated to data-transfer offload." Here it is
//! a real OS thread — [`SpotAgent`] — driving the same [`EngineCore`] state
//! machine over the emulated RDMA fabric ([`rdma::emu`]). This is the
//! engine the runnable examples use: the compute node's threads never post a
//! verb; the agent thread does all of it, off the compute node.
//!
//! The agent is event-driven: it probes on a timer, executes transfers
//! through host-level RDMA work requests, and batches read responses
//! (`BATCH_SIZE`) before writing them back "to reduce the load on the
//! compute node and its network interface card" and its own verb count.
//!
//! ## Spot-instance failover
//!
//! Spot VMs get revoked. The agent models the full lifecycle:
//!
//! * [`SpotAgent::preemption_notice`] delivers the cloud's "two-minute
//!   warning": the agent drains — finishes everything it has accepted,
//!   publishes a final red block, and exits cleanly.
//! * [`SpotAgent::kill`] is revocation without warning (or a crash): the
//!   thread abandons in-flight work. The client detects the stall
//!   ([`cowbird::error::WaitError::EngineStalled`]), fences the epoch, and
//!   attaches a standby.
//! * [`SpotAgent::spawn_standby`] starts an agent that first reads the
//!   predecessor's red block from the channel region, adopts its committed
//!   state ([`EngineCore::adopt_from_red`]), publishes the bumped epoch, and
//!   resumes the normal loop.
//! * A zombie predecessor that was merely frozen (not dead) fences itself
//!   the first time a probe shows the client's fence word above its epoch,
//!   and exits with [`EngineStats::fenced`] set.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use cowbird::layout::{RED_LEN, RED_OFFSET};
use rdma::emu::EmuNic;
use rdma::mem::{Region, Rkey};
use rdma::qp::QpNum;
use rdma::verbs::{WorkRequest, WrKind, WrOp};
use telemetry::profile::Phase;
use telemetry::{Component, EventKind};

use crate::core::{EngineConfig, EngineCore, EngineStats, FabricOp};

/// Lifecycle signals shared between a [`SpotAgent`] and its thread.
#[derive(Default)]
struct Flags {
    /// Graceful stop: exit at the next round boundary.
    stop: AtomicBool,
    /// Abrupt revocation: exit immediately, abandoning in-flight work.
    kill: AtomicBool,
    /// Preemption notice received: finish accepted work, then exit.
    drain: AtomicBool,
    /// Freeze without exiting (a "zombie": alive but making no progress).
    pause: AtomicBool,
    /// Set by the thread while it is actually parked in the pause loop, so
    /// callers can wait for the freeze to take effect deterministically.
    parked: AtomicBool,
}

/// A running Cowbird-Spot agent; stops and joins on drop.
pub struct SpotAgent {
    flags: Arc<Flags>,
    handle: Option<JoinHandle<EngineStats>>,
}

/// Handle for delivering a spot preemption notice — the cloud's
/// "two-minute warning" — to a running agent from any thread.
#[derive(Clone)]
pub struct PreemptionNotice {
    flags: Arc<Flags>,
}

impl PreemptionNotice {
    /// Deliver the warning: the agent finishes every request it has
    /// accepted, publishes a final red block, and exits.
    pub fn deliver(&self) {
        self.flags.drain.store(true, Ordering::Release);
    }
}

/// Wiring the agent needs (established during the Setup phase).
#[derive(Clone)]
pub struct SpotWiring {
    /// The engine's NIC on the emulated fabric.
    pub nic: EmuNic,
    /// Engine's local QPN toward the compute node.
    pub compute_qpn: QpNum,
    /// Engine's local QPN toward the memory pool.
    pub pool_qpn: QpNum,
    /// rkey of the channel region on the compute node's NIC.
    pub channel_rkey: Rkey,
}

impl SpotAgent {
    /// Start the agent thread for one channel.
    pub fn spawn(wiring: SpotWiring, cfg: EngineConfig) -> SpotAgent {
        SpotAgent::spawn_inner(wiring, cfg, false)
    }

    /// Start a standby agent that adopts the channel from the predecessor's
    /// red block before serving it. The caller should have fenced the old
    /// epoch ([`cowbird::channel::Channel::fence_engine`]) first; the
    /// standby's first red publish then lands at exactly the fence epoch.
    pub fn spawn_standby(wiring: SpotWiring, cfg: EngineConfig) -> SpotAgent {
        SpotAgent::spawn_inner(wiring, cfg, true)
    }

    fn spawn_inner(wiring: SpotWiring, cfg: EngineConfig, adopt: bool) -> SpotAgent {
        let flags = Arc::new(Flags::default());
        let thread_flags = Arc::clone(&flags);
        // Per-channel names: several agents run at once in multi-channel
        // deployments, and identical thread names make flight-recorder node
        // attribution ambiguous.
        let name = if adopt {
            format!("cowbird-spot-standby-{}", cfg.channel_id)
        } else {
            format!("cowbird-spot-agent-{}", cfg.channel_id)
        };
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || agent_loop(wiring, cfg, thread_flags, adopt))
            .expect("spawn spot agent");
        SpotAgent {
            flags,
            handle: Some(handle),
        }
    }

    /// Stop the agent at the next round boundary and return its final
    /// statistics.
    pub fn stop(mut self) -> EngineStats {
        self.flags.stop.store(true, Ordering::Release);
        self.join_inner()
    }

    /// Revoke the agent without warning (crash / spot revocation): it exits
    /// as soon as it observes the flag, abandoning in-flight work and
    /// leaving the red block wherever the last completed round put it.
    pub fn kill(mut self) -> EngineStats {
        self.flags.kill.store(true, Ordering::Release);
        self.join_inner()
    }

    /// A handle for delivering the preemption "two-minute warning".
    pub fn preemption_notice(&self) -> PreemptionNotice {
        PreemptionNotice {
            flags: Arc::clone(&self.flags),
        }
    }

    /// Freeze (`true`) or thaw (`false`) the agent between rounds. A frozen
    /// agent is the deterministic model of a zombie: still holding its QPs,
    /// making no progress, and due for an epoch fence when it wakes.
    pub fn set_paused(&self, paused: bool) {
        self.flags.pause.store(paused, Ordering::Release);
    }

    /// Is the agent currently parked in the pause loop? (Pausing takes
    /// effect at the next round boundary; poll this to know the freeze has
    /// landed before acting on it.)
    pub fn is_parked(&self) -> bool {
        self.flags.parked.load(Ordering::Acquire)
    }

    /// Has the agent thread exited (drained after a preemption notice,
    /// fenced, or stopped)?
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(|h| h.is_finished())
    }

    /// Wait for the agent to exit on its own (after a preemption notice or
    /// an epoch fence) and return its final statistics.
    pub fn join(mut self) -> EngineStats {
        self.join_inner()
    }

    fn join_inner(&mut self) -> EngineStats {
        self.handle
            .take()
            .expect("already stopped")
            .join()
            .expect("agent panicked")
    }
}

impl Drop for SpotAgent {
    fn drop(&mut self) {
        self.flags.stop.store(true, Ordering::Release);
        self.flags.pause.store(false, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Completion bookkeeping for one posted WR. A plain op carries one part;
/// a coalesced SG read carries one part per merged request, delivered to
/// the core in order when the single wire completion arrives. `len == 0`
/// marks a tagged-write acknowledgment (no payload to read back).
struct Pending {
    parts: Vec<(u64, u64, u32)>,
}

fn agent_loop(
    wiring: SpotWiring,
    cfg: EngineConfig,
    flags: Arc<Flags>,
    adopt: bool,
) -> EngineStats {
    let mut core = EngineCore::new(cfg);
    // Cycle-attribution handle (cloned so scopes don't borrow the core
    // across its mutations). Disabled by default: one branch per scope.
    let prof = core.profiler().clone();
    // Local landing zone for fetched data.
    let scratch = Region::new(8 << 20);
    let scratch_lkey = wiring.nic.register(scratch.clone());
    let mut scratch_cursor: u64 = 0;
    let mut pending: HashMap<u64, Pending> = HashMap::new();
    let mut next_wr: u64 = 1;

    let chaining = core.config().coalescing();

    let exec = |core: &mut EngineCore,
                ops: Vec<FabricOp>,
                pending: &mut HashMap<u64, Pending>,
                scratch_cursor: &mut u64,
                next_wr: &mut u64| {
        let _ = core;
        let mut posts: Vec<(QpNum, WorkRequest)> = Vec::with_capacity(ops.len());
        for op in ops {
            let (qpn, wr_op, parts) = match op {
                FabricOp::ReadCompute { offset, len, tag } => {
                    let off = alloc(scratch_cursor, scratch.len() as u64, len);
                    (
                        wiring.compute_qpn,
                        WrOp::Read {
                            local_rkey: scratch_lkey,
                            local_addr: off,
                            remote_addr: offset,
                            remote_rkey: wiring.channel_rkey,
                            len,
                        },
                        vec![(tag, off, len)],
                    )
                }
                FabricOp::ReadPool {
                    rkey,
                    addr,
                    len,
                    tag,
                } => {
                    let off = alloc(scratch_cursor, scratch.len() as u64, len);
                    (
                        wiring.pool_qpn,
                        WrOp::Read {
                            local_rkey: scratch_lkey,
                            local_addr: off,
                            remote_addr: addr,
                            remote_rkey: rkey,
                            len,
                        },
                        vec![(tag, off, len)],
                    )
                }
                FabricOp::ReadPoolSg { rkey, addr, parts } => {
                    // One SG verb for the whole contiguous remote run; each
                    // part lands in its own scratch segment so the single
                    // completion scatters back into per-request payloads.
                    let mut segments = Vec::with_capacity(parts.len());
                    let mut bookkeeping = Vec::with_capacity(parts.len());
                    for (len, tag) in parts {
                        let off = alloc(scratch_cursor, scratch.len() as u64, len);
                        segments.push((off, len));
                        bookkeeping.push((tag, off, len));
                    }
                    (
                        wiring.pool_qpn,
                        WrOp::ReadSg {
                            local_rkey: scratch_lkey,
                            segments,
                            remote_addr: addr,
                            remote_rkey: rkey,
                        },
                        bookkeeping,
                    )
                }
                FabricOp::WriteCompute { offset, data, tag } => (
                    wiring.compute_qpn,
                    WrOp::WriteInline {
                        remote_addr: offset,
                        remote_rkey: wiring.channel_rkey,
                        data,
                    },
                    // Tagged writes (red publishes) want their delivery
                    // acknowledgment fed back; len 0 marks "no payload".
                    if tag != 0 {
                        vec![(tag, 0, 0)]
                    } else {
                        Vec::new()
                    },
                ),
                FabricOp::WritePool { rkey, addr, data } => (
                    wiring.pool_qpn,
                    WrOp::WriteInline {
                        remote_addr: addr,
                        remote_rkey: rkey,
                        data,
                    },
                    Vec::new(),
                ),
                FabricOp::WritePoolSg {
                    rkey,
                    addr,
                    segments,
                } => (
                    wiring.pool_qpn,
                    WrOp::WriteSg {
                        remote_addr: addr,
                        remote_rkey: rkey,
                        segments,
                    },
                    Vec::new(),
                ),
            };
            let wr_id = *next_wr;
            *next_wr += 1;
            if !parts.is_empty() {
                pending.insert(wr_id, Pending { parts });
            }
            posts.push((qpn, WorkRequest { wr_id, op: wr_op }));
        }
        if chaining {
            // One doorbell per run of same-QP WRs: consecutive posts to the
            // same destination go out as a single linked chain.
            let mut iter = posts.into_iter().peekable();
            while let Some((qpn, wr)) = iter.next() {
                let mut chain = vec![wr];
                while iter.peek().is_some_and(|(q, _)| *q == qpn) {
                    chain.push(iter.next().unwrap().1);
                }
                wiring.nic.post_chain(qpn, chain).expect("agent post");
            }
        } else {
            for (qpn, wr) in posts {
                wiring.nic.post(qpn, wr).expect("agent post");
            }
        }
    };

    // Standby path: adopt the predecessor's committed state from the red
    // block in the channel region before serving anything.
    if adopt {
        let off = alloc(&mut scratch_cursor, scratch.len() as u64, RED_LEN as u32);
        let wr_id = next_wr;
        next_wr += 1;
        wiring
            .nic
            .post(
                wiring.compute_qpn,
                WorkRequest {
                    wr_id,
                    op: WrOp::Read {
                        local_rkey: scratch_lkey,
                        local_addr: off,
                        remote_addr: RED_OFFSET,
                        remote_rkey: wiring.channel_rkey,
                        len: RED_LEN as u32,
                    },
                },
            )
            .expect("standby red read");
        loop {
            if flags.stop.load(Ordering::Acquire) || flags.kill.load(Ordering::Acquire) {
                return core.stats;
            }
            let completions = wiring.nic.poll(4);
            if let Some(c) = completions
                .iter()
                .find(|c| c.wr_id == wr_id && c.kind == WrKind::Read)
            {
                if c.is_ok() {
                    let red = scratch.read_vec(off, RED_LEN as usize).unwrap();
                    core.adopt_from_red(&red);
                }
                break;
            }
            std::thread::yield_now();
        }
        // Publish the bumped epoch immediately so the client (and any
        // zombie predecessor, via its own probe of the fence word) observes
        // the takeover without waiting for request traffic.
        let ops = core.red_update();
        exec(
            &mut core,
            ops,
            &mut pending,
            &mut scratch_cursor,
            &mut next_wr,
        );
    }

    let mut drain_seen = false;
    'outer: while !flags.stop.load(Ordering::Acquire) && !flags.kill.load(Ordering::Acquire) {
        if flags.pause.load(Ordering::Acquire) {
            // a = 1 entering the freeze, 0 on thaw.
            core.recorder()
                .record(Component::Engine, EventKind::EngineParked, 0, 1, 0);
            flags.parked.store(true, Ordering::Release);
            while flags.pause.load(Ordering::Acquire)
                && !flags.stop.load(Ordering::Acquire)
                && !flags.kill.load(Ordering::Acquire)
            {
                std::thread::yield_now();
            }
            flags.parked.store(false, Ordering::Release);
            core.recorder()
                .record(Component::Engine, EventKind::EngineParked, 0, 0, 0);
        }
        let draining = flags.drain.load(Ordering::Acquire);
        if draining && !drain_seen {
            drain_seen = true;
            // a = 1: graceful two-minute warning (vs 0 for an abrupt kill).
            core.recorder()
                .record(Component::Engine, EventKind::EnginePreempted, 0, 1, 0);
        }
        // While draining we stop soliciting new work — except to kick the
        // state machine when parsed requests are waiting with nothing in
        // flight (a probe's completion is what re-runs the pending queue).
        if !draining || (pending.is_empty() && core.backlog() > 0) {
            // Attribution: soliciting work (green-block probe issue) is the
            // engine's Probe phase, measured on the agent thread's wall
            // clock.
            let _probe_scope = prof.scope(Phase::Probe);
            let ops = core.on_probe_due();
            exec(
                &mut core,
                ops,
                &mut pending,
                &mut scratch_cursor,
                &mut next_wr,
            );
        }

        // Drain completions until the engine goes quiet for this round.
        let mut idle_spins = 0;
        while !pending.is_empty() && idle_spins < 10_000 {
            if flags.kill.load(Ordering::Acquire) {
                break 'outer;
            }
            let completions = wiring.nic.poll(64);
            if completions.is_empty() {
                idle_spins += 1;
                std::thread::yield_now();
                continue;
            }
            idle_spins = 0;
            for c in completions {
                if !c.is_ok() {
                    core.reset_to_committed();
                    pending.clear();
                    continue;
                }
                let Some(p) = pending.remove(&c.wr_id) else {
                    continue;
                };
                // Attribution: dispatching fetched data through the state
                // machine (and issuing the follow-up verbs) is Execute.
                let _exec_scope = prof.scope(Phase::Execute);
                // An SG read completes all its parts at once; scatter them
                // back through the core in merge order.
                for (tag, off, len) in p.parts {
                    let data = if len == 0 {
                        // A tagged write completed: the acknowledgment
                        // carries no payload.
                        Vec::new()
                    } else {
                        scratch.read_vec(off, len as usize).unwrap()
                    };
                    let ops = core.on_data(tag, &data);
                    exec(
                        &mut core,
                        ops,
                        &mut pending,
                        &mut scratch_cursor,
                        &mut next_wr,
                    );
                }
            }
        }

        if core.is_fenced() {
            // A newer epoch owns the channel: exit without touching the
            // fabric again (EngineStats::fenced is already set).
            break;
        }
        if draining && pending.is_empty() && core.backlog() == 0 {
            // Preemption notice honored: everything accepted has completed
            // and the final red block is published.
            break;
        }

        // The paper's prototype probes every 2 us; emulated wall-clock
        // sleeps at that granularity are unreliable, so yield instead —
        // effectively the "maximum probe rate" configuration.
        std::thread::yield_now();
    }
    if flags.kill.load(Ordering::Acquire) {
        // a = 0: revocation without warning (in-flight work abandoned).
        core.recorder()
            .record(Component::Engine, EventKind::EnginePreempted, 0, 0, 0);
    }
    core.stats
}

fn alloc(cursor: &mut u64, cap: u64, len: u32) -> u64 {
    let len = len as u64;
    if *cursor % cap + len > cap {
        *cursor += cap - *cursor % cap;
    }
    let off = *cursor % cap;
    *cursor += len;
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use cowbird::channel::Channel;
    use cowbird::error::WaitError;
    use cowbird::layout::ChannelLayout;
    use cowbird::poll::PollGroup;
    use cowbird::region::{RegionMap, RemoteRegion};
    use rdma::emu::EmuFabric;

    /// The full three-party system on the emulated fabric: compute NIC,
    /// spot engine, memory pool — with real threads everywhere — plus the
    /// spare parts needed to attach standby engines.
    struct TestBed {
        fabric: EmuFabric,
        ch: Channel,
        pool_mem: Region,
        agent: Option<SpotAgent>,
        compute: rdma::emu::EmuNic,
        pool: rdma::emu::EmuNic,
        channel_rkey: Rkey,
        layout: ChannelLayout,
        regions: RegionMap,
    }

    impl TestBed {
        /// Attach a standby engine on its own NIC (a different VM): fresh
        /// QPs to the compute node and the pool, adopting the channel.
        fn standby(&mut self) -> SpotAgent {
            let nic = self.fabric.add_nic();
            let (c_qpn, _) = self.fabric.connect(&nic, &self.compute);
            let (p_qpn, _) = self.fabric.connect(&nic, &self.pool);
            SpotAgent::spawn_standby(
                SpotWiring {
                    nic,
                    compute_qpn: c_qpn,
                    pool_qpn: p_qpn,
                    channel_rkey: self.channel_rkey,
                },
                EngineConfig::spot(self.layout, self.regions.clone(), 16),
            )
        }
    }

    fn deploy() -> TestBed {
        let mut fabric = EmuFabric::new();
        let compute = fabric.add_nic();
        let engine = fabric.add_nic();
        let pool = fabric.add_nic();

        // Pool memory.
        let pool_mem = Region::new(1 << 20);
        let pool_rkey = pool.register(pool_mem.clone());

        // Channel on the compute node.
        let mut regions = RegionMap::new();
        regions.insert(
            1,
            RemoteRegion {
                rkey: pool_rkey,
                base: 0,
                size: 1 << 20,
            },
        );
        let layout = ChannelLayout::default_sizes();
        let ch = Channel::new(0, layout, regions.clone());
        let channel_rkey = compute.register(ch.region().clone());

        // QPs: engine<->compute, engine<->pool.
        let (eng_c_qpn, _c_qpn) = fabric.connect(&engine, &compute);
        let (eng_p_qpn, _p_qpn) = fabric.connect(&engine, &pool);

        let agent = SpotAgent::spawn(
            SpotWiring {
                nic: engine,
                compute_qpn: eng_c_qpn,
                pool_qpn: eng_p_qpn,
                channel_rkey,
            },
            EngineConfig::spot(layout, regions.clone(), 16),
        );
        TestBed {
            fabric,
            ch,
            pool_mem,
            agent: Some(agent),
            compute,
            pool,
            channel_rkey,
            layout,
            regions,
        }
    }

    #[test]
    fn real_thread_end_to_end_read() {
        let mut bed = deploy();
        bed.pool_mem.write(777, b"threaded!").unwrap();
        let h = bed.ch.async_read(1, 777, 9).unwrap();
        assert!(bed.ch.wait(h.id, 50_000_000), "read must complete");
        assert_eq!(bed.ch.take_response(&h).unwrap(), b"threaded!");
        let stats = bed.agent.take().unwrap().stop();
        assert!(stats.probes_sent > 0);
        assert_eq!(stats.pool_reads, 1);
    }

    #[test]
    fn real_thread_end_to_end_write_then_read() {
        let mut bed = deploy();
        let w = bed.ch.async_write(1, 64, b"ABCD").unwrap();
        assert!(bed.ch.wait(w, 50_000_000));
        assert_eq!(bed.pool_mem.read_vec(64, 4).unwrap(), b"ABCD");
        // Read it back through Cowbird.
        let h = bed.ch.async_read(1, 64, 4).unwrap();
        assert!(bed.ch.wait(h.id, 50_000_000));
        assert_eq!(bed.ch.take_response(&h).unwrap(), b"ABCD");
    }

    #[test]
    fn poll_group_collects_batch_completions() {
        let mut bed = deploy();
        for i in 0..32u64 {
            bed.pool_mem.write(i * 8, &i.to_le_bytes()).unwrap();
        }
        let mut group = PollGroup::new();
        let handles: Vec<_> = (0..32u64)
            .map(|i| {
                let h = bed.ch.async_read(1, i * 8, 8).unwrap();
                group.add(h.id);
                h
            })
            .collect();
        let mut done = Vec::new();
        for _ in 0..1000 {
            match group.poll_wait_timeout(&mut bed.ch, 32 - done.len(), 100_000) {
                Ok(ids) => done.extend(ids),
                // A stalled verdict here just means the engine thread was
                // slow to schedule; keep waiting.
                Err(WaitError::EngineStalled { .. }) => continue,
                Err(e) => panic!("unexpected wait error: {e}"),
            }
            if done.len() == 32 {
                break;
            }
        }
        assert_eq!(done.len(), 32, "all completions must arrive");
        for (i, h) in handles.iter().enumerate() {
            let d = bed.ch.take_response(h).unwrap();
            assert_eq!(
                u64::from_le_bytes(d.as_slice().try_into().unwrap()),
                i as u64
            );
        }
    }

    #[test]
    fn preemption_notice_drains_and_standby_takes_over() {
        let mut bed = deploy();
        bed.pool_mem.write(0, b"both engines").unwrap();
        let h1 = bed.ch.async_read(1, 0, 4).unwrap();
        assert!(bed.ch.wait(h1.id, 50_000_000));
        assert_eq!(bed.ch.take_response(&h1).unwrap(), b"both");

        // Two-minute warning: the agent finishes what it accepted and
        // exits on its own.
        let agent = bed.agent.take().unwrap();
        agent.preemption_notice().deliver();
        let stats = agent.join();
        assert!(!stats.fenced);
        assert_eq!(stats.pool_reads, 1);

        // Requests issued after the VM is gone stall...
        let h2 = bed.ch.async_read(1, 5, 7).unwrap();
        assert!(matches!(
            bed.ch.wait_timeout(h2.id, 200_000),
            Err(WaitError::EngineStalled { .. })
        ));
        // ...until the client fences the dead epoch and attaches a standby.
        assert_eq!(bed.ch.fence_engine(), 1);
        let standby = bed.standby();
        assert!(bed.ch.wait(h2.id, 50_000_000), "standby must take over");
        assert_eq!(bed.ch.take_response(&h2).unwrap(), b"engines");
        assert_eq!(bed.ch.engine_epoch(), 1);
        let st = standby.stop();
        assert_eq!(st.adoptions, 1);
        assert_eq!(st.pool_reads, 1);
    }

    #[test]
    fn frozen_zombie_is_fenced_and_standby_resumes_exactly_once() {
        let mut bed = deploy();
        bed.pool_mem.write(64, b"SURVIVES").unwrap();
        // Warm up, then freeze the primary into a zombie: still holding
        // its QPs, making no progress.
        let h = bed.ch.async_read(1, 64, 8).unwrap();
        assert!(bed.ch.wait(h.id, 50_000_000));
        let agent = bed.agent.take().unwrap();
        agent.set_paused(true);
        while !agent.is_parked() {
            std::thread::yield_now();
        }

        // Work issued against the frozen engine stalls out.
        let w = bed.ch.async_write(1, 128, b"once!").unwrap();
        let r = bed.ch.async_read(1, 64, 8).unwrap();
        assert!(matches!(
            bed.ch.wait_timeout(w, 200_000),
            Err(WaitError::EngineStalled { .. })
        ));

        // Fence and fail over; the standby completes both, exactly once.
        assert_eq!(bed.ch.fence_engine(), 1);
        let standby = bed.standby();
        assert!(bed.ch.wait(w, 50_000_000));
        assert!(bed.ch.wait(r.id, 50_000_000));
        assert_eq!(bed.ch.take_response(&r).unwrap(), b"SURVIVES");
        assert_eq!(bed.pool_mem.read_vec(128, 5).unwrap(), b"once!");

        // Thaw the zombie: its next probe sees the fence word and it exits
        // by itself without emitting anything.
        agent.set_paused(false);
        let zombie = agent.join();
        assert!(zombie.fenced);
        assert_eq!(zombie.writes_executed, 0);

        let st = standby.stop();
        assert_eq!(st.adoptions, 1);
        assert_eq!(st.writes_executed, 1, "the write must apply exactly once");
    }
}

//! Engine scale-out: a sharded multi-channel polling group (paper §6).
//!
//! One Cowbird engine serves *many* channels — the paper provisions "one
//! channel per hardware thread" on the compute side, while the offload side
//! is supposed to stay cheap enough that a couple of spot cores (or one
//! switch pipeline) carry the whole machine. [`SpotAgent`] is the
//! one-thread-per-channel existence proof; [`EngineGroup`] is the shape a
//! deployment actually wants:
//!
//! * **M worker threads, each owning a shard of N channels.** A worker
//!   makes one non-blocking [`EngineCore`] pass per channel per sweep:
//!   issue the green probe when its (per-channel, adaptive) deadline is
//!   due, poll that channel's completion queue, dispatch fetched data
//!   through the state machine. No channel ever blocks its neighbours.
//! * **An adaptive idle ladder.** A worker whose whole shard went quiet
//!   spins briefly (latency), then yields (fairness), then *parks* on the
//!   group [`Doorbell`] — woken either by a co-located client bumping the
//!   doorbell on post, or by the earliest probe deadline in the shard
//!   (remote clients cannot ring a process-local bell, so probing remains
//!   the discovery path of record). After a timeout wake that finds no
//!   work the worker goes straight back to park: an idle shard burns zero
//!   spin iterations.
//! * **Hot-channel rebalancing.** Every rebalance interval a worker
//!   publishes its shard's observed ops and, if it is running hot against
//!   the lightest shard, donates its hottest channel — the whole slot
//!   (core, queue pairs, in-flight ops) moves through the receiving
//!   shard's inbox. Migration is fencing-safe for the same reason standby
//!   takeover is: the slot is exclusively owned by exactly one worker at
//!   a time, and a fenced core is retired rather than moved.
//! * **A recycled-buffer arena per shard** ([`rdma::buf::BufArena`], the
//!   software analogue of §5.3's packet recycling): every channel adopted
//!   by a shard is rebound to the shard's arena, so a hot channel's
//!   retired payload buffers immediately serve its neighbours.
//!
//! Wiring model: each channel carries its own [`SpotWiring`] — its own
//! queue pairs (and, on the emulated fabric, its own NIC handle), exactly
//! as a per-channel [`SpotAgent`] would. A slot's completion queue is
//! therefore private to the slot, which is what makes handing the whole
//! slot to another worker trivially safe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cowbird::Doorbell;
use rdma::buf::{ArenaStats, BufArena};
use rdma::mem::Region;
use rdma::verbs::{WorkRequest, WrOp};
use telemetry::profile::{CostAccount, Phase};
use telemetry::{Component, MetricsRegistry, Profiler};

use crate::core::{EngineConfig, EngineCore, EngineStats, FabricOp};
use crate::spot::SpotWiring;

/// Tuning for an [`EngineGroup`].
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// Worker threads (= shards).
    pub workers: usize,
    /// Idle ladder stage 1: busy-spin sweeps before yielding.
    pub spin_limit: u32,
    /// Idle ladder stage 2: yielding sweeps before parking.
    pub yield_limit: u32,
    /// Upper bound on one park (also how often an empty shard checks its
    /// inbox). The actual park is the *earlier* of this and the shard's
    /// next probe deadline.
    pub park_timeout: Duration,
    /// How often a worker publishes shard load and considers donating its
    /// hottest channel to the lightest shard.
    pub rebalance_interval: Duration,
    /// Hysteresis: donate only when this shard's interval ops exceed twice
    /// the lightest shard's plus this floor (avoids ping-ponging channels
    /// on noise).
    pub rebalance_min_ops: u64,
    /// How often a worker looks for a *stuck* neighbour: a shard whose
    /// published backlog has stayed above the hysteresis bound (same `2x +
    /// rebalance_min_ops` guard as donation) for two consecutive checks
    /// clearly missed its own rebalance ticks, so the lightest shard
    /// steals its hottest channel instead of waiting for a donation that
    /// is not coming.
    pub steal_interval: Duration,
    /// Free-list budget of each shard's buffer arena, *per attached
    /// channel*. The shard re-caps its arena to `arena_pooled × channels`
    /// whenever its channel count changes (adoption, donation, steal,
    /// retirement), so a shard driving eight channels pools eight channels'
    /// worth of in-flight payload buffers instead of thrashing a
    /// single-channel-sized free list.
    pub arena_pooled: usize,
}

impl Default for GroupConfig {
    fn default() -> GroupConfig {
        GroupConfig {
            workers: 1,
            spin_limit: 64,
            yield_limit: 64,
            park_timeout: Duration::from_millis(1),
            rebalance_interval: Duration::from_millis(10),
            rebalance_min_ops: 16,
            steal_interval: Duration::from_millis(20),
            arena_pooled: 256,
        }
    }
}

impl GroupConfig {
    /// A group with `workers` shards and default tuning.
    pub fn with_workers(workers: usize) -> GroupConfig {
        GroupConfig {
            workers: workers.max(1),
            ..GroupConfig::default()
        }
    }

    /// Override the park bound (tests use long parks to prove idleness).
    pub fn with_park_timeout(mut self, d: Duration) -> GroupConfig {
        self.park_timeout = d;
        self
    }

    /// Override the rebalance cadence.
    pub fn with_rebalance_interval(mut self, d: Duration) -> GroupConfig {
        self.rebalance_interval = d;
        self
    }

    /// Override the work-stealing check cadence.
    pub fn with_steal_interval(mut self, d: Duration) -> GroupConfig {
        self.steal_interval = d;
        self
    }
}

/// Final statistics of a channel the group has retired (fenced, or still
/// owned at [`EngineGroup::stop`]).
#[derive(Clone, Copy, Debug)]
pub struct FinishedChannel {
    pub channel_id: u16,
    pub stats: EngineStats,
}

/// A point-in-time view of one shard, for gauges and tests.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    pub shard: usize,
    /// Channels currently owned by the shard's worker.
    pub channels: usize,
    /// Executed ops observed over the last completed rebalance interval.
    pub load_ops: u64,
    pub sweeps: u64,
    /// Busy-spin iterations (ladder stage 1).
    pub spins: u64,
    /// Yield iterations (ladder stage 2).
    pub yields: u64,
    /// Times the worker parked on the doorbell.
    pub parks: u64,
    /// Parks that ended in a doorbell ring (vs a timeout).
    pub wakes: u64,
    pub migrations_out: u64,
    pub migrations_in: u64,
    /// Steal requests this shard filed against stuck neighbours.
    pub steals_requested: u64,
    /// Steal requests this shard honored by handing a channel over.
    pub steals_honored: u64,
    /// Fenced channels retired by this shard.
    pub retired: u64,
    /// The shard arena's hit/miss/recycle counters.
    pub arena: ArenaStats,
    /// Wall nanoseconds attributed to probing across the shard.
    pub probe_ns: u64,
    /// Wall nanoseconds attributed to executing fetched data.
    pub execute_ns: u64,
}

#[derive(Default)]
struct ShardCounters {
    sweeps: AtomicU64,
    spins: AtomicU64,
    yields: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
    migrations_out: AtomicU64,
    migrations_in: AtomicU64,
    steals_requested: AtomicU64,
    steals_honored: AtomicU64,
    retired: AtomicU64,
}

struct ShardShared {
    /// Channels handed to this shard (new or migrated); the worker adopts
    /// them at the top of each sweep.
    inbox: Mutex<Vec<ChannelSlot>>,
    /// The shard's recycled-buffer arena; every adopted channel is rebound
    /// to it.
    arena: BufArena,
    /// Cycle attribution for the shard's probe/execute work.
    account: Arc<CostAccount>,
    profiler: Profiler,
    /// Executed ops over the last completed rebalance interval.
    load: AtomicU64,
    /// Issued-but-incomplete work (pending WRs + parsed backlog), published
    /// every sweep — the signal work stealing keys on. A shard too wedged
    /// to rebalance still publishes this from its sweep loop.
    backlog: AtomicU64,
    /// Thief shard index wanting a channel (`usize::MAX` = none). Set by a
    /// light shard that watched this shard stay overloaded; honored at the
    /// owner's next sweep.
    steal_request: AtomicUsize,
    /// Channels currently owned (worker-published).
    channels: AtomicUsize,
    counters: ShardCounters,
}

struct GroupShared {
    cfg: GroupConfig,
    stop: AtomicBool,
    doorbell: Doorbell,
    shards: Vec<ShardShared>,
    finished: Mutex<Vec<FinishedChannel>>,
}

/// One channel's complete engine state; exclusively owned by one worker at
/// a time and moved wholesale on rebalance.
struct ChannelSlot {
    core: EngineCore,
    wiring: SpotWiring,
    scratch: Region,
    scratch_lkey: rdma::mem::Rkey,
    scratch_cursor: u64,
    pending: HashMap<u64, Pending>,
    next_wr: u64,
    next_probe_at: Instant,
    /// `reads_executed + writes_executed` at the last rebalance tick.
    last_executed: u64,
    /// Executed ops since the last rebalance tick (this slot's share of
    /// the shard's published load).
    interval_ops: u64,
}

/// Completion bookkeeping for one posted WR: one part per merged request
/// (plain ops carry one), delivered in order when the wire completion
/// arrives. `len == 0` marks a tagged-write acknowledgment.
struct Pending {
    parts: Vec<(u64, u64, u32)>,
}

/// Scratch landing zone per channel: big enough for a full probe + meta +
/// data pipeline, far smaller than the agent's (a group drives many).
const SLOT_SCRATCH: usize = 1 << 20;

impl ChannelSlot {
    fn new(wiring: SpotWiring, cfg: EngineConfig, now: Instant) -> ChannelSlot {
        let scratch = Region::new(SLOT_SCRATCH);
        let scratch_lkey = wiring.nic.register(scratch.clone());
        ChannelSlot {
            core: EngineCore::new(cfg),
            wiring,
            scratch,
            scratch_lkey,
            scratch_cursor: 0,
            pending: HashMap::new(),
            next_wr: 1,
            next_probe_at: now,
            last_executed: 0,
            interval_ops: 0,
        }
    }

    fn alloc(&mut self, len: u32) -> u64 {
        let cap = self.scratch.len() as u64;
        let len = len as u64;
        if self.scratch_cursor % cap + len > cap {
            self.scratch_cursor += cap - self.scratch_cursor % cap;
        }
        let off = self.scratch_cursor % cap;
        self.scratch_cursor += len;
        off
    }

    fn exec(&mut self, ops: Vec<FabricOp>) {
        let chaining = self.core.config().coalescing();
        let mut posts: Vec<(rdma::qp::QpNum, WorkRequest)> = Vec::with_capacity(ops.len());
        for op in ops {
            let (qpn, wr_op, parts) = match op {
                FabricOp::ReadCompute { offset, len, tag } => {
                    let off = self.alloc(len);
                    (
                        self.wiring.compute_qpn,
                        WrOp::Read {
                            local_rkey: self.scratch_lkey,
                            local_addr: off,
                            remote_addr: offset,
                            remote_rkey: self.wiring.channel_rkey,
                            len,
                        },
                        vec![(tag, off, len)],
                    )
                }
                FabricOp::ReadPool {
                    rkey,
                    addr,
                    len,
                    tag,
                } => {
                    let off = self.alloc(len);
                    (
                        self.wiring.pool_qpn,
                        WrOp::Read {
                            local_rkey: self.scratch_lkey,
                            local_addr: off,
                            remote_addr: addr,
                            remote_rkey: rkey,
                            len,
                        },
                        vec![(tag, off, len)],
                    )
                }
                FabricOp::ReadPoolSg { rkey, addr, parts } => {
                    // One SG verb for the contiguous remote run; per-part
                    // scratch segments let the single completion scatter
                    // back into per-request payloads.
                    let mut segments = Vec::with_capacity(parts.len());
                    let mut bookkeeping = Vec::with_capacity(parts.len());
                    for (len, tag) in parts {
                        let off = self.alloc(len);
                        segments.push((off, len));
                        bookkeeping.push((tag, off, len));
                    }
                    (
                        self.wiring.pool_qpn,
                        WrOp::ReadSg {
                            local_rkey: self.scratch_lkey,
                            segments,
                            remote_addr: addr,
                            remote_rkey: rkey,
                        },
                        bookkeeping,
                    )
                }
                FabricOp::WriteCompute { offset, data, tag } => (
                    self.wiring.compute_qpn,
                    WrOp::WriteInline {
                        remote_addr: offset,
                        remote_rkey: self.wiring.channel_rkey,
                        data,
                    },
                    // Tagged writes (red publishes) feed their delivery
                    // acknowledgment back; len 0 marks "no payload".
                    if tag != 0 {
                        vec![(tag, 0, 0)]
                    } else {
                        Vec::new()
                    },
                ),
                FabricOp::WritePool { rkey, addr, data } => (
                    self.wiring.pool_qpn,
                    WrOp::WriteInline {
                        remote_addr: addr,
                        remote_rkey: rkey,
                        data,
                    },
                    Vec::new(),
                ),
                FabricOp::WritePoolSg {
                    rkey,
                    addr,
                    segments,
                } => (
                    self.wiring.pool_qpn,
                    WrOp::WriteSg {
                        remote_addr: addr,
                        remote_rkey: rkey,
                        segments,
                    },
                    Vec::new(),
                ),
            };
            let wr_id = self.next_wr;
            self.next_wr += 1;
            if !parts.is_empty() {
                self.pending.insert(wr_id, Pending { parts });
            }
            posts.push((qpn, WorkRequest { wr_id, op: wr_op }));
        }
        if chaining {
            // One doorbell per run of same-QP WRs.
            let mut iter = posts.into_iter().peekable();
            while let Some((qpn, wr)) = iter.next() {
                let mut chain = vec![wr];
                while iter.peek().is_some_and(|(q, _)| *q == qpn) {
                    chain.push(iter.next().unwrap().1);
                }
                self.wiring.nic.post_chain(qpn, chain).expect("group post");
            }
        } else {
            for (qpn, wr) in posts {
                self.wiring.nic.post(qpn, wr).expect("group post");
            }
        }
    }

    /// One non-blocking pass: probe if due, poll the CQ once, dispatch.
    /// Returns whether anything happened.
    fn pass(&mut self, now: Instant, shard: &ShardShared) -> bool {
        let mut work = false;
        if now >= self.next_probe_at {
            let ops = {
                let _scope = shard.profiler.scope(Phase::Probe);
                self.core.on_probe_due()
            };
            if !ops.is_empty() {
                work = true;
                self.exec(ops);
            }
            // The core's adaptive policy speaks virtual (nanosecond)
            // durations; this driver runs on the wall clock.
            self.next_probe_at = now + Duration::from_nanos(self.core.next_probe_interval().0);
        }
        if self.pending.is_empty() {
            return work;
        }
        let completions = self.wiring.nic.poll(64);
        if completions.is_empty() {
            return work;
        }
        work = true;
        for c in completions {
            if !c.is_ok() {
                self.core.reset_to_committed();
                self.pending.clear();
                continue;
            }
            let Some(p) = self.pending.remove(&c.wr_id) else {
                continue;
            };
            // An SG read completes all its parts at once; scatter them
            // back through the core in merge order.
            for (tag, off, len) in p.parts {
                let data = if len == 0 {
                    Vec::new()
                } else {
                    self.scratch.read_vec(off, len as usize).unwrap()
                };
                let ops = {
                    let _scope = shard.profiler.scope(Phase::Execute);
                    self.core.on_data(tag, &data)
                };
                self.exec(ops);
            }
        }
        work
    }
}

/// A running polling group; stops and joins its workers on drop.
pub struct EngineGroup {
    shared: Arc<GroupShared>,
    handles: Vec<JoinHandle<()>>,
    /// Round-robin cursor for channel placement.
    next_shard: AtomicUsize,
}

impl EngineGroup {
    /// Spawn `cfg.workers` shard workers. Channels are attached afterwards
    /// with [`EngineGroup::add_channel`].
    pub fn spawn(cfg: GroupConfig) -> EngineGroup {
        let workers = cfg.workers.max(1);
        let doorbell = Doorbell::new(workers);
        let shards = (0..workers)
            .map(|i| {
                let account = Arc::new(CostAccount::new());
                ShardShared {
                    inbox: Mutex::new(Vec::new()),
                    arena: BufArena::new(cfg.arena_pooled),
                    profiler: Profiler::attached(
                        Arc::clone(&account),
                        i as u16,
                        Component::Engine,
                        true,
                    ),
                    account,
                    load: AtomicU64::new(0),
                    backlog: AtomicU64::new(0),
                    steal_request: AtomicUsize::new(usize::MAX),
                    channels: AtomicUsize::new(0),
                    counters: ShardCounters::default(),
                }
            })
            .collect();
        let shared = Arc::new(GroupShared {
            cfg,
            stop: AtomicBool::new(false),
            doorbell,
            shards,
            finished: Mutex::new(Vec::new()),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cowbird-engine-shard-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn group worker")
            })
            .collect();
        EngineGroup {
            shared,
            handles,
            next_shard: AtomicUsize::new(0),
        }
    }

    /// The group's doorbell. Hand a clone to every co-located client
    /// channel ([`cowbird::channel::Channel::set_doorbell`]) so posts wake
    /// parked workers.
    pub fn doorbell(&self) -> Doorbell {
        self.shared.doorbell.clone()
    }

    /// Attach a channel, placing it round-robin across shards.
    pub fn add_channel(&self, wiring: SpotWiring, cfg: EngineConfig) {
        let n = self.shared.shards.len();
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % n;
        self.add_channel_to(shard, wiring, cfg);
    }

    /// Attach a channel to a specific shard (benchmarks skew placement on
    /// purpose; rebalancing should undo it).
    pub fn add_channel_to(&self, shard: usize, wiring: SpotWiring, cfg: EngineConfig) {
        let slot = ChannelSlot::new(wiring, cfg, Instant::now());
        self.shared.shards[shard].inbox.lock().unwrap().push(slot);
        // Wake a parked receiver so adoption doesn't wait for a timeout.
        self.shared.doorbell.ring();
    }

    /// Channels retired so far (fenced mid-flight; the rest arrive when
    /// the group stops).
    pub fn finished(&self) -> Vec<FinishedChannel> {
        self.shared.finished.lock().unwrap().clone()
    }

    /// Point-in-time per-shard statistics.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shared
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardSnapshot {
                shard: i,
                channels: s.channels.load(Ordering::Acquire),
                load_ops: s.load.load(Ordering::Acquire),
                sweeps: s.counters.sweeps.load(Ordering::Relaxed),
                spins: s.counters.spins.load(Ordering::Relaxed),
                yields: s.counters.yields.load(Ordering::Relaxed),
                parks: s.counters.parks.load(Ordering::Relaxed),
                wakes: s.counters.wakes.load(Ordering::Relaxed),
                migrations_out: s.counters.migrations_out.load(Ordering::Relaxed),
                migrations_in: s.counters.migrations_in.load(Ordering::Relaxed),
                steals_requested: s.counters.steals_requested.load(Ordering::Relaxed),
                steals_honored: s.counters.steals_honored.load(Ordering::Relaxed),
                retired: s.counters.retired.load(Ordering::Relaxed),
                arena: s.arena.stats(),
                probe_ns: s.account.phase_ns(Phase::Probe),
                execute_ns: s.account.phase_ns(Phase::Execute),
            })
            .collect()
    }

    /// Export per-shard gauges under `cowbird.engine.shard.*` and the
    /// shard arenas' recycling counters under `cowbird.engine.arena.*`.
    pub fn export_metrics(&self, reg: &MetricsRegistry) {
        for snap in self.shard_snapshots() {
            let shard = snap.shard.to_string();
            let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
            reg.gauge_set(
                "cowbird.engine.shard.channels",
                labels,
                snap.channels as f64,
            );
            reg.gauge_set(
                "cowbird.engine.shard.load_ops",
                labels,
                snap.load_ops as f64,
            );
            reg.gauge_set("cowbird.engine.shard.sweeps", labels, snap.sweeps as f64);
            reg.gauge_set("cowbird.engine.shard.spins", labels, snap.spins as f64);
            reg.gauge_set("cowbird.engine.shard.yields", labels, snap.yields as f64);
            reg.gauge_set("cowbird.engine.shard.parks", labels, snap.parks as f64);
            reg.gauge_set("cowbird.engine.shard.wakes", labels, snap.wakes as f64);
            reg.gauge_set(
                "cowbird.engine.shard.migrations_out",
                labels,
                snap.migrations_out as f64,
            );
            reg.gauge_set(
                "cowbird.engine.shard.migrations_in",
                labels,
                snap.migrations_in as f64,
            );
            reg.gauge_set(
                "cowbird.engine.shard.steals_requested",
                labels,
                snap.steals_requested as f64,
            );
            reg.gauge_set(
                "cowbird.engine.shard.steals_honored",
                labels,
                snap.steals_honored as f64,
            );
            reg.gauge_set("cowbird.engine.shard.retired", labels, snap.retired as f64);
            reg.gauge_set(
                "cowbird.engine.shard.probe_ns",
                labels,
                snap.probe_ns as f64,
            );
            reg.gauge_set(
                "cowbird.engine.shard.execute_ns",
                labels,
                snap.execute_ns as f64,
            );
            reg.gauge_set("cowbird.engine.arena.hits", labels, snap.arena.hits as f64);
            reg.gauge_set(
                "cowbird.engine.arena.misses",
                labels,
                snap.arena.misses as f64,
            );
            reg.gauge_set(
                "cowbird.engine.arena.recycled",
                labels,
                snap.arena.recycled as f64,
            );
            reg.gauge_set(
                "cowbird.engine.arena.hit_rate",
                labels,
                snap.arena.hit_rate(),
            );
        }
    }

    /// Stop every worker, retire all channels, and return their final
    /// statistics (mid-flight retirements included).
    pub fn stop(mut self) -> Vec<FinishedChannel> {
        self.stop_inner();
        self.shared.finished.lock().unwrap().clone()
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Posts don't stop arriving just because we do; ring until every
        // worker has observed the flag and exited.
        for h in self.handles.drain(..) {
            while !h.is_finished() {
                self.shared.doorbell.ring();
                std::thread::yield_now();
            }
            let _ = h.join();
        }
    }
}

impl Drop for EngineGroup {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Publish the shard's channel count and re-cap its arena to the
/// per-channel budget times the channels it now drives (min one channel's
/// worth, so an emptied shard still recycles its next adoption's traffic).
fn publish_channels(me: &ShardShared, cfg: &GroupConfig, channels: usize) {
    me.channels.store(channels, Ordering::Release);
    me.arena.set_max_pooled(cfg.arena_pooled * channels.max(1));
}

fn worker_loop(shared: Arc<GroupShared>, shard_idx: usize) {
    let me = &shared.shards[shard_idx];
    let cfg = &shared.cfg;
    let park_threshold = cfg.spin_limit + cfg.yield_limit;
    let mut slots: Vec<ChannelSlot> = Vec::new();
    let mut idle_streak: u32 = 0;
    let mut next_rebalance = Instant::now() + cfg.rebalance_interval;
    let mut next_steal = Instant::now() + cfg.steal_interval;
    let mut overload_streaks: Vec<u32> = vec![0; shared.shards.len()];

    while !shared.stop.load(Ordering::Acquire) {
        // Adopt new/migrated channels; rebind them to this shard's arena.
        {
            let mut inbox = me.inbox.lock().unwrap();
            if !inbox.is_empty() {
                for mut slot in inbox.drain(..) {
                    slot.core.set_arena(me.arena.clone());
                    slots.push(slot);
                }
                publish_channels(me, cfg, slots.len());
                idle_streak = 0;
            }
        }

        // Honor a steal request filed by a lighter shard: hand over the
        // hottest non-fenced channel through its inbox — the same path
        // (and the same exclusive-ownership safety) as a donation. Fenced
        // slots never move; the sweep below retires them.
        let thief = me.steal_request.swap(usize::MAX, Ordering::AcqRel);
        if thief != usize::MAX && thief != shard_idx && slots.len() >= 2 {
            let hottest = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.core.is_fenced())
                .max_by_key(|(_, s)| {
                    s.core.stats.reads_executed + s.core.stats.writes_executed - s.last_executed
                });
            if let Some((idx, _)) = hottest {
                let mut slot = slots.swap_remove(idx);
                slot.interval_ops = 0;
                me.counters.steals_honored.fetch_add(1, Ordering::Relaxed);
                me.counters.migrations_out.fetch_add(1, Ordering::Relaxed);
                let to = &shared.shards[thief];
                to.counters.migrations_in.fetch_add(1, Ordering::Relaxed);
                to.inbox.lock().unwrap().push(slot);
                publish_channels(me, cfg, slots.len());
                shared.doorbell.ring();
            }
        }

        // Doorbell snapshot BEFORE sweeping: a post that lands mid-sweep
        // moves the counter past the snapshot and the park below returns
        // immediately instead of losing the wakeup.
        let snapshot = shared.doorbell.posts();
        let now = Instant::now();
        let mut work = false;
        let mut inflight = false;
        let mut backlog = 0u64;
        let mut next_deadline: Option<Instant> = None;
        let mut i = 0;
        while i < slots.len() {
            // Keep the in-band readback snapshot's placement view current:
            // which shard owns the channel and how deep its queue runs.
            let depth = slots[i].pending.len() as u64 + slots[i].core.backlog() as u64;
            slots[i].core.set_shard_hint(shard_idx as u64, depth);
            work |= slots[i].pass(now, me);
            if slots[i].core.is_fenced() {
                // A newer epoch owns this channel: retire it exactly like
                // an agent exiting, never to touch the fabric again.
                let slot = slots.swap_remove(i);
                retire(&shared, me, slot);
                publish_channels(me, cfg, slots.len());
                work = true;
                continue;
            }
            inflight |= !slots[i].pending.is_empty();
            backlog += slots[i].pending.len() as u64 + slots[i].core.backlog() as u64;
            next_deadline = Some(match next_deadline {
                Some(d) => d.min(slots[i].next_probe_at),
                None => slots[i].next_probe_at,
            });
            i += 1;
        }
        me.counters.sweeps.fetch_add(1, Ordering::Relaxed);
        // Published every sweep (unlike `load`, which needs a rebalance
        // tick): the staleness-proof signal work stealing keys on.
        me.backlog.store(backlog, Ordering::Release);

        if now >= next_rebalance {
            rebalance(&shared, shard_idx, &mut slots);
            publish_channels(me, cfg, slots.len());
            next_rebalance = now + cfg.rebalance_interval;
        }
        if now >= next_steal {
            steal_check(&shared, shard_idx, &mut overload_streaks, backlog);
            next_steal = now + cfg.steal_interval;
        }

        if work {
            idle_streak = 0;
            continue;
        }
        idle_streak = idle_streak.saturating_add(1);
        if idle_streak <= cfg.spin_limit {
            me.counters.spins.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
        } else if idle_streak <= park_threshold || inflight {
            // Completions arrive from NIC service threads without ringing
            // the doorbell, so a shard with ops in flight never parks.
            me.counters.yields.fetch_add(1, Ordering::Relaxed);
            std::thread::yield_now();
        } else {
            let timeout = match next_deadline {
                Some(d) => d.saturating_duration_since(now).min(cfg.park_timeout),
                None => cfg.park_timeout,
            };
            me.counters.parks.fetch_add(1, Ordering::Relaxed);
            if shared.doorbell.park(snapshot, timeout) {
                // A client posted: probe everything now rather than waiting
                // out backed-off adaptive deadlines.
                me.counters.wakes.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                for slot in &mut slots {
                    slot.next_probe_at = now;
                }
                idle_streak = 0;
            } else {
                // Timeout (a probe deadline, or an inbox check): sweep once
                // and, if still idle, park again immediately — no spinning.
                idle_streak = park_threshold;
            }
        }
    }

    for slot in slots.drain(..) {
        retire(&shared, me, slot);
    }
    me.channels.store(0, Ordering::Release);
}

fn retire(shared: &GroupShared, me: &ShardShared, slot: ChannelSlot) {
    if slot.core.is_fenced() {
        me.counters.retired.fetch_add(1, Ordering::Relaxed);
    }
    shared.finished.lock().unwrap().push(FinishedChannel {
        channel_id: slot.core.config().channel_id,
        stats: slot.core.stats,
    });
}

/// Work-stealing fallback: a neighbour whose published backlog stays
/// above the donation hysteresis bound (twice ours plus
/// `rebalance_min_ops`) for two consecutive checks has evidently missed
/// its own rebalance ticks — if this shard is the lightest, it files a
/// steal request for the neighbour's hottest channel. The owner hands the
/// slot over at its next sweep through the inbox, so exclusive ownership
/// (and fenced-slot retirement) work exactly as they do for donations.
fn steal_check(shared: &GroupShared, shard_idx: usize, streaks: &mut [u32], my_backlog: u64) {
    if shared.shards.len() < 2 {
        return;
    }
    let me = &shared.shards[shard_idx];
    let lightest = shared
        .shards
        .iter()
        .enumerate()
        .min_by_key(|(i, s)| (s.backlog.load(Ordering::Acquire), *i))
        .map(|(i, _)| i);
    for (i, other) in shared.shards.iter().enumerate() {
        if i == shard_idx {
            continue;
        }
        if other.backlog.load(Ordering::Acquire) <= 2 * my_backlog + shared.cfg.rebalance_min_ops {
            streaks[i] = 0;
            continue;
        }
        streaks[i] += 1;
        if streaks[i] >= 2 && lightest == Some(shard_idx) {
            if other
                .steal_request
                .compare_exchange(usize::MAX, shard_idx, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                me.counters.steals_requested.fetch_add(1, Ordering::Relaxed);
                // Nudge the owner (it may be parked between sweeps).
                shared.doorbell.ring();
            }
            streaks[i] = 0;
        }
    }
}

/// Publish this shard's observed load and donate the hottest channel to
/// the lightest shard when running hot. Donation moves the whole slot
/// through the receiver's inbox; the donor never touches it again.
fn rebalance(shared: &GroupShared, shard_idx: usize, slots: &mut Vec<ChannelSlot>) {
    let me = &shared.shards[shard_idx];
    let mut my_load = 0u64;
    for slot in slots.iter_mut() {
        let executed = slot.core.stats.reads_executed + slot.core.stats.writes_executed;
        slot.interval_ops = executed - slot.last_executed;
        slot.last_executed = executed;
        my_load += slot.interval_ops;
    }
    me.load.store(my_load, Ordering::Release);
    if slots.len() < 2 || shared.shards.len() < 2 {
        return;
    }
    let (lightest, light_load) = shared
        .shards
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != shard_idx)
        .map(|(i, s)| (i, s.load.load(Ordering::Acquire)))
        .min_by_key(|(_, l)| *l)
        .expect("at least one other shard");
    if my_load <= 2 * light_load + shared.cfg.rebalance_min_ops {
        return;
    }
    // The hottest channel whose departure still leaves us at or above the
    // receiver (ops < my_load - light_load) — strictly shrinking the
    // imbalance, so two balanced shards never ping-pong a channel.
    let hottest = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| s.interval_ops > 0 && s.interval_ops < my_load - light_load)
        .max_by_key(|(_, s)| s.interval_ops);
    let Some((idx, _)) = hottest else {
        return;
    };
    let mut slot = slots.swap_remove(idx);
    slot.interval_ops = 0;
    me.counters.migrations_out.fetch_add(1, Ordering::Relaxed);
    let to = &shared.shards[lightest];
    to.counters.migrations_in.fetch_add(1, Ordering::Relaxed);
    to.inbox.lock().unwrap().push(slot);
    // Wake the receiver if it is parked.
    shared.doorbell.ring();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cowbird::channel::Channel;
    use cowbird::layout::ChannelLayout;
    use cowbird::region::{RegionMap, RemoteRegion};
    use rdma::emu::EmuFabric;

    struct GroupBed {
        _fabric: EmuFabric,
        channels: Vec<Channel>,
        pool_mem: Region,
        group: EngineGroup,
    }

    /// `n` channels on one compute NIC, one pool, each channel wired to
    /// the group through its own engine-side NIC (the spot model).
    fn deploy(n: usize, gcfg: GroupConfig, placement: impl Fn(usize) -> Option<usize>) -> GroupBed {
        deploy_with(n, gcfg, placement, |cfg| cfg)
    }

    fn deploy_with(
        n: usize,
        gcfg: GroupConfig,
        placement: impl Fn(usize) -> Option<usize>,
        cfgmap: impl Fn(EngineConfig) -> EngineConfig,
    ) -> GroupBed {
        let mut fabric = EmuFabric::new();
        let compute = fabric.add_nic();
        let pool = fabric.add_nic();
        let pool_mem = Region::new(1 << 20);
        let pool_rkey = pool.register(pool_mem.clone());
        let mut regions = RegionMap::new();
        regions.insert(
            1,
            RemoteRegion {
                rkey: pool_rkey,
                base: 0,
                size: 1 << 20,
            },
        );
        let layout = ChannelLayout::default_sizes();
        let group = EngineGroup::spawn(gcfg);
        let mut channels = Vec::new();
        for id in 0..n {
            let mut ch = Channel::new(id as u16, layout, regions.clone());
            ch.set_doorbell(group.doorbell());
            let channel_rkey = compute.register(ch.region().clone());
            let engine = fabric.add_nic();
            let (c_qpn, _) = fabric.connect(&engine, &compute);
            let (p_qpn, _) = fabric.connect(&engine, &pool);
            let wiring = SpotWiring {
                nic: engine,
                compute_qpn: c_qpn,
                pool_qpn: p_qpn,
                channel_rkey,
            };
            let cfg =
                cfgmap(EngineConfig::spot(layout, regions.clone(), 16).with_channel_id(id as u16));
            match placement(id) {
                Some(shard) => group.add_channel_to(shard, wiring, cfg),
                None => group.add_channel(wiring, cfg),
            }
            channels.push(ch);
        }
        GroupBed {
            _fabric: fabric,
            channels,
            pool_mem,
            group,
        }
    }

    #[test]
    fn one_worker_drives_eight_channels() {
        let mut bed = deploy(8, GroupConfig::with_workers(1), |_| None);
        for i in 0..8usize {
            bed.pool_mem
                .write(i as u64 * 64, format!("chan-{i}").as_bytes())
                .unwrap();
        }
        let handles: Vec<_> = (0..8)
            .map(|i| bed.channels[i].async_read(1, i as u64 * 64, 6).unwrap())
            .collect();
        for (i, h) in handles.iter().enumerate() {
            assert!(
                bed.channels[i].wait(h.id, 200_000_000),
                "channel {i} read must complete"
            );
            assert_eq!(
                bed.channels[i].take_response(h).unwrap(),
                format!("chan-{i}").as_bytes()
            );
        }
        let snaps = bed.group.shard_snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].channels, 8);
        let finished = bed.group.stop();
        assert_eq!(finished.len(), 8);
        assert!(finished.iter().all(|f| f.stats.pool_reads == 1));
    }

    #[test]
    fn writes_and_reads_interleave_across_the_group() {
        let mut bed = deploy(4, GroupConfig::with_workers(2), |_| None);
        for i in 0..4usize {
            let w = bed.channels[i]
                .async_write(1, 4096 + i as u64 * 16, format!("W{i}").as_bytes())
                .unwrap();
            assert!(bed.channels[i].wait(w, 200_000_000));
        }
        for i in 0..4usize {
            let h = bed.channels[i]
                .async_read(1, 4096 + i as u64 * 16, 2)
                .unwrap();
            assert!(bed.channels[i].wait(h.id, 200_000_000));
            assert_eq!(
                bed.channels[i].take_response(&h).unwrap(),
                format!("W{i}").as_bytes()
            );
        }
        // Steady-state recycling: after the first touches, payload buffers
        // come off the shard free lists.
        let snaps = bed.group.shard_snapshots();
        let (hits, misses) = snaps
            .iter()
            .fold((0, 0), |(h, m), s| (h + s.arena.hits, m + s.arena.misses));
        assert!(hits + misses > 0, "traffic must touch the arenas");
    }

    #[test]
    fn skewed_placement_rebalances_toward_the_idle_shard() {
        let mut gcfg =
            GroupConfig::with_workers(2).with_rebalance_interval(Duration::from_millis(2));
        gcfg.rebalance_min_ops = 2;
        // Both channels forced onto shard 0; shard 1 starts empty.
        let mut bed = deploy(2, gcfg, |_| Some(0));
        bed.pool_mem.write(0, b"hot-data").unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut migrated = false;
        'outer: while Instant::now() < deadline {
            // A burst of concurrent reads on both channels so the interval
            // load clears the donation hysteresis.
            let handles: Vec<_> = (0..2usize)
                .flat_map(|i| {
                    (0..16)
                        .map(|_| (i, bed.channels[i].async_read(1, 0, 8).unwrap()))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (i, h) in &handles {
                assert!(bed.channels[*i].wait(h.id, 200_000_000));
                assert_eq!(bed.channels[*i].take_response(h).unwrap(), b"hot-data");
            }
            let snaps = bed.group.shard_snapshots();
            if snaps[0].migrations_out + snaps[1].migrations_out > 0 {
                migrated = true;
                break 'outer;
            }
        }
        assert!(migrated, "a hot channel must migrate to the empty shard");
        // Traffic still completes after the move.
        for i in 0..2usize {
            let h = bed.channels[i].async_read(1, 0, 8).unwrap();
            assert!(bed.channels[i].wait(h.id, 200_000_000));
        }
        bed.group.stop();
    }

    #[test]
    fn stuck_shard_has_its_hottest_channel_stolen() {
        // Donation is effectively disabled (hour-long rebalance interval):
        // the only way a channel can move is the work-stealing fallback,
        // where the idle shard watches shard 0's backlog stay over the
        // hysteresis bound and files a steal request.
        let mut gcfg = GroupConfig::with_workers(2)
            .with_rebalance_interval(Duration::from_secs(3600))
            .with_steal_interval(Duration::from_millis(1));
        gcfg.rebalance_min_ops = 2;
        // Both channels forced onto shard 0; shard 1 starts empty.
        let mut bed = deploy(2, gcfg, |_| Some(0));
        bed.pool_mem.write(0, b"stolen!!").unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut stolen = false;
        while Instant::now() < deadline {
            let handles: Vec<_> = (0..2usize)
                .flat_map(|i| {
                    (0..16)
                        .map(|_| (i, bed.channels[i].async_read(1, 0, 8).unwrap()))
                        .collect::<Vec<_>>()
                })
                .collect();
            for (i, h) in &handles {
                assert!(bed.channels[*i].wait(h.id, 200_000_000));
                assert_eq!(bed.channels[*i].take_response(h).unwrap(), b"stolen!!");
            }
            let snaps = bed.group.shard_snapshots();
            if snaps[0].steals_honored > 0 {
                assert!(snaps[1].steals_requested > 0, "the thief filed the request");
                assert!(snaps[1].migrations_in > 0, "the slot moved to the thief");
                stolen = true;
                break;
            }
        }
        assert!(stolen, "the idle shard must steal from the stuck one");
        // Traffic still completes after the theft.
        for i in 0..2usize {
            let h = bed.channels[i].async_read(1, 0, 8).unwrap();
            assert!(bed.channels[i].wait(h.id, 200_000_000));
        }
        bed.group.stop();
    }

    #[test]
    fn fenced_channel_is_retired_not_served() {
        let mut bed = deploy(1, GroupConfig::with_workers(1), |_| None);
        bed.pool_mem.write(0, b"before-fence").unwrap();
        let h = bed.channels[0].async_read(1, 0, 12).unwrap();
        assert!(bed.channels[0].wait(h.id, 200_000_000));
        // Fence the epoch, as a failover would; the group's next probe
        // observes it and retires the slot.
        assert_eq!(bed.channels[0].fence_engine(), 1);
        let deadline = Instant::now() + Duration::from_secs(20);
        while bed.group.finished().is_empty() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let finished = bed.group.finished();
        assert_eq!(finished.len(), 1, "fenced channel must be retired");
        assert!(finished[0].stats.fenced);
        assert_eq!(bed.group.shard_snapshots()[0].retired, 1);
    }

    #[test]
    fn idle_group_parks_and_doorbell_wakes_it() {
        let gcfg = GroupConfig::with_workers(1).with_park_timeout(Duration::from_secs(5));
        // Without adaptive probing the 2 us default keeps the worker
        // perpetually busy issuing probes; with it, an idle channel ramps
        // down and the worker walks the ladder to park.
        let mut bed = deploy_with(
            1,
            gcfg,
            |_| None,
            |cfg| cfg.with_adaptive_probe(simnet::Duration::from_millis(500), 8),
        );
        bed.pool_mem.write(128, b"wake").unwrap();
        // Let the worker walk the ladder down to park.
        let deadline = Instant::now() + Duration::from_secs(20);
        while bed.group.doorbell().parked() == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(bed.group.doorbell().parked() > 0, "idle worker must park");
        let parks_before = bed.group.shard_snapshots()[0].parks;
        assert!(parks_before > 0);
        // A post rings the doorbell through the channel and the read
        // completes without waiting out the 5 s park.
        let t0 = Instant::now();
        let h = bed.channels[0].async_read(1, 128, 4).unwrap();
        assert!(bed.channels[0].wait(h.id, 2_000_000_000));
        assert_eq!(bed.channels[0].take_response(&h).unwrap(), b"wake");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "doorbell must beat the park timeout"
        );
        assert!(bed.group.shard_snapshots()[0].wakes > 0);
    }

    #[test]
    fn metrics_export_covers_every_shard() {
        let bed = deploy(3, GroupConfig::with_workers(2), |_| None);
        let reg = MetricsRegistry::new();
        // Give workers a beat to adopt their inboxes.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let snaps = bed.group.shard_snapshots();
            if snaps.iter().map(|s| s.channels).sum::<usize>() == 3 {
                break;
            }
            std::thread::yield_now();
        }
        bed.group.export_metrics(&reg);
        let snap = reg.snapshot();
        let json = snap.to_json();
        for key in [
            "cowbird.engine.shard.channels",
            "cowbird.engine.shard.parks",
            "cowbird.engine.arena.hit_rate",
        ] {
            assert!(json.contains(key), "metrics must include {key}");
        }
    }
}

//! Coalescing must be invisible to the protocol: for any op stream, the
//! engine with scatter-gather merging and completion moderation enabled
//! produces exactly the same pool state, the same responses, and the same
//! client-visible progress trajectory as the one-verb-per-op engine. The
//! write-after-read crash barrier must also hold across a chain boundary —
//! a held write never reaches the pool before the covering read commits,
//! even when that read travelled as one segment of a multi-SGE verb.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::{EngineConfig, EngineCore, FabricOp};
use proptest::prelude::*;
use rdma::mem::Region;

const POOL_SIZE: usize = 1 << 16;
const SLOT: u64 = 8;

/// Synchronous loopback fabric: executes FabricOps directly against the
/// channel region and a pool region, feeding completions back immediately.
struct LoopDriver {
    compute: Region,
    pool: Region,
}

impl LoopDriver {
    fn run(&self, core: &mut EngineCore, ops: Vec<FabricOp>) {
        let mut queue = ops;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for op in queue {
                match op {
                    FabricOp::ReadCompute { offset, len, tag } => {
                        let data = self.compute.read_vec(offset, len as usize).unwrap();
                        next.extend(core.on_data(tag, &data));
                    }
                    FabricOp::WriteCompute { offset, data, tag } => {
                        self.compute.write(offset, &data).unwrap();
                        if tag != 0 {
                            next.extend(core.on_data(tag, &[]));
                        }
                    }
                    FabricOp::ReadPool { addr, len, tag, .. } => {
                        let data = self.pool.read_vec(addr, len as usize).unwrap();
                        next.extend(core.on_data(tag, &data));
                    }
                    FabricOp::WritePool { addr, data, .. } => {
                        self.pool.write(addr, &data).unwrap();
                    }
                    FabricOp::ReadPoolSg { addr, parts, .. } => {
                        let mut cursor = addr;
                        for (len, tag) in parts {
                            let data = self.pool.read_vec(cursor, len as usize).unwrap();
                            cursor += u64::from(len);
                            next.extend(core.on_data(tag, &data));
                        }
                    }
                    FabricOp::WritePoolSg { addr, segments, .. } => {
                        let mut cursor = addr;
                        for seg in segments {
                            self.pool.write(cursor, &seg).unwrap();
                            cursor += seg.len() as u64;
                        }
                    }
                }
            }
            queue = next;
        }
    }

    fn probe(&self, core: &mut EngineCore) {
        let ops = core.on_probe_due();
        self.run(core, ops);
    }
}

fn setup(coalesce_sge: usize) -> (Channel, EngineCore, LoopDriver) {
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: 5,
            base: 0,
            size: POOL_SIZE as u64,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let ch = Channel::new(0, layout, regions.clone());
    let cfg = EngineConfig::spot(layout, regions, 8).with_coalesce_sge(coalesce_sge);
    let core = EngineCore::new(cfg);
    let driver = LoopDriver {
        compute: ch.region().clone(),
        pool: Region::new(POOL_SIZE),
    };
    (ch, core, driver)
}

/// One client operation against a slot-aligned address range.
#[derive(Clone, Debug)]
enum OpSpec {
    Read { slot: u8, slots: u8 },
    Write { slot: u8, slots: u8, fill: u8 },
}

fn op_spec() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0u8..60, 1u8..4).prop_map(|(slot, slots)| OpSpec::Read { slot, slots }),
        (0u8..60, 1u8..4, any::<u8>()).prop_map(|(slot, slots, fill)| OpSpec::Write {
            slot,
            slots,
            fill
        }),
    ]
}

/// Client-visible outcome of one run: the progress trajectory, all read
/// responses (in issue order), and the final pool image.
type Outcome = (Vec<(u64, u64)>, Vec<Vec<u8>>, Vec<u8>);

/// Drive one engine over `ops`, probing every `burst` issues.
fn run(ops: &[OpSpec], coalesce_sge: usize, burst: usize) -> Outcome {
    let (mut ch, mut core, driver) = setup(coalesce_sge);
    for i in 0..POOL_SIZE {
        driver.pool.write(i as u64, &[(i % 251) as u8]).unwrap();
    }
    let mut trajectory = Vec::new();
    let mut handles = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            OpSpec::Read { slot, slots } => {
                let addr = u64::from(slot) * SLOT;
                let len = u32::from(slots) * SLOT as u32;
                if let Ok(h) = ch.async_read(1, addr, len) {
                    handles.push(h);
                }
            }
            OpSpec::Write { slot, slots, fill } => {
                let addr = u64::from(slot) * SLOT;
                let len = usize::from(slots) * SLOT as usize;
                let _ = ch.async_write(1, addr, &vec![fill; len]);
            }
        }
        if (i + 1) % burst == 0 {
            driver.probe(&mut core);
            trajectory.push(core.progress());
        }
    }
    // Drain: probe until nothing is in flight.
    for _ in 0..16 {
        driver.probe(&mut core);
        trajectory.push(core.progress());
        if ch.in_flight() == (0, 0) {
            break;
        }
        ch.refresh();
    }
    assert_eq!(ch.in_flight(), (0, 0), "stream must drain");
    let responses = handles
        .iter()
        .map(|h| ch.take_response(h).unwrap())
        .collect();
    (
        trajectory,
        responses,
        driver.pool.read_vec(0, POOL_SIZE).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op streams: coalescing on vs off must be observationally
    /// identical — same progress trajectory (completion order is implied by
    /// the monotone per-type counters), same response bytes, same pool.
    #[test]
    fn coalescing_preserves_pool_state_and_completion_order(
        ops in proptest::collection::vec(op_spec(), 1..80),
        burst in 1usize..12,
    ) {
        let (traj_on, resp_on, pool_on) = run(&ops, 16, burst);
        let (traj_off, resp_off, pool_off) = run(&ops, 1, burst);
        prop_assert_eq!(traj_on, traj_off);
        prop_assert_eq!(resp_on, resp_off);
        prop_assert_eq!(pool_on, pool_off);
    }
}

/// A held write must not cross the crash barrier even when the read that
/// holds it back rode in the middle of a scatter-gather chain: crash the
/// engine after the chain executed but before the red block committed, and
/// the pool must still carry the old bytes; recovery then replays the read
/// (seeing the original data) before releasing the write.
#[test]
fn crash_barrier_holds_across_chain_boundary() {
    let (mut ch, mut core, driver) = setup(16);
    driver.pool.write(0, b"OLDAOLDB").unwrap();
    let r1 = ch.async_read(1, 0, 4).unwrap();
    let r2 = ch.async_read(1, 4, 4).unwrap();
    let w = ch.async_write(1, 0, b"NEW!").unwrap();

    // Execute the probe results by hand, dropping every tagged compute
    // write (the red publish and its delivery ack) — a crash at the worst
    // moment: the SG read chain completed, the commit did not.
    let mut queue = core.on_probe_due();
    let mut saw_sg = false;
    while !queue.is_empty() {
        let mut next = Vec::new();
        for op in queue {
            match op {
                FabricOp::ReadCompute { offset, len, tag } => {
                    let data = driver.compute.read_vec(offset, len as usize).unwrap();
                    next.extend(core.on_data(tag, &data));
                }
                FabricOp::WriteCompute { offset, data, tag } => {
                    if tag != 0 {
                        continue; // red publish lost: no ack, no commit
                    }
                    driver.compute.write(offset, &data).unwrap();
                }
                FabricOp::ReadPoolSg { addr, parts, .. } => {
                    saw_sg = true;
                    let mut cursor = addr;
                    for (len, tag) in parts {
                        let data = driver.pool.read_vec(cursor, len as usize).unwrap();
                        cursor += u64::from(len);
                        next.extend(core.on_data(tag, &data));
                    }
                }
                FabricOp::ReadPool { addr, len, tag, .. } => {
                    let data = driver.pool.read_vec(addr, len as usize).unwrap();
                    next.extend(core.on_data(tag, &data));
                }
                FabricOp::WritePool { .. } | FabricOp::WritePoolSg { .. } => {
                    panic!("held write released before the read committed");
                }
            }
        }
        queue = next;
    }
    assert!(
        saw_sg,
        "adjacent reads must have coalesced into one SG verb"
    );
    assert_eq!(core.stats.writes_held, 1);
    assert_eq!(
        driver.pool.read_vec(0, 8).unwrap(),
        b"OLDAOLDB",
        "held write must not reach the pool across the crash barrier"
    );

    // Crash + recover: Go-Back-N to the committed floor, then replay.
    core.reset_to_committed();
    for _ in 0..4 {
        driver.probe(&mut core);
    }
    assert!(ch.is_complete(r1.id));
    assert!(ch.is_complete(r2.id));
    assert!(ch.is_complete(w));
    assert_eq!(ch.take_response(&r1).unwrap(), b"OLDA");
    assert_eq!(ch.take_response(&r2).unwrap(), b"OLDB");
    assert_eq!(driver.pool.read_vec(0, 4).unwrap(), b"NEW!");
}

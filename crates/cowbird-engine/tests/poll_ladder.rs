//! The idle ladder is genuinely idle — measured with a counting allocator.
//!
//! A polling group whose shard has gone quiet must converge to *parked*,
//! not merely "spinning politely": over a verified-quiet window the whole
//! process performs **zero heap allocations** and the shard records **zero
//! busy-spin iterations** (and zero sweeps — the worker never woke at
//! all). A client post then bumps the channel's doorbell word and rings
//! the group doorbell, and the parked worker completes the request orders
//! of magnitude faster than the park timeout or the backed-off probe
//! interval — proving it was the doorbell, not a timer, that woke it.
//!
//! The allocation counter is a process-global `#[global_allocator]`, so
//! this file holds exactly one test: the quiet window is only meaningful
//! while no sibling test thread is allocating.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::{EngineConfig, EngineGroup, GroupConfig, SpotWiring};
use rdma::emu::EmuFabric;
use rdma::mem::Region;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn idle_shard_allocates_nothing_and_spins_never_until_doorbell() {
    // One worker, one channel. Long park bound; adaptive probing ramps the
    // idle channel from a 2 ms active rate toward a 30 s baseline, so once
    // quiescent the worker's next timer wake is far beyond the window.
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let pool = fabric.add_nic();
    let pool_mem = Region::new(1 << 20);
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let group =
        EngineGroup::spawn(GroupConfig::with_workers(1).with_park_timeout(Duration::from_secs(30)));
    let mut ch = Channel::new(0, layout, regions.clone());
    ch.set_doorbell(group.doorbell());
    let channel_rkey = compute.register(ch.region().clone());
    let engine = fabric.add_nic();
    let (c_qpn, _) = fabric.connect(&engine, &compute);
    let (p_qpn, _) = fabric.connect(&engine, &pool);
    group.add_channel(
        SpotWiring {
            nic: engine,
            compute_qpn: c_qpn,
            pool_qpn: p_qpn,
            channel_rkey,
        },
        EngineConfig::spot(layout, regions, 16)
            .with_probe_interval(simnet::Duration::from_millis(2))
            .with_adaptive_probe(simnet::Duration::from_secs(30), 2),
    );

    // Warm up: one full round trip so rings, arena, and scratch paths have
    // all been touched before idleness is judged.
    pool_mem.write(512, b"steady-state").unwrap();
    let h = ch.async_read(1, 512, 12).unwrap();
    assert!(ch.wait(h.id, 30_000_000_000), "warm-up read must complete");
    assert_eq!(ch.take_response(&h).unwrap(), b"steady-state");

    // Find a verified-quiet window: worker parked at both edges, and over
    // the window zero sweeps, zero spins, zero heap allocations anywhere
    // in the process. The adaptive ramp guarantees such a window exists
    // once the probe interval exceeds the window length.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut quiet = false;
    while Instant::now() < deadline {
        if group.doorbell().parked() == 0 {
            std::thread::yield_now();
            continue;
        }
        let before = group.shard_snapshots().remove(0);
        let allocs_before = ALLOCS.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(250));
        let allocs_after = ALLOCS.load(Ordering::Relaxed);
        let after = group.shard_snapshots().remove(0);
        if group.doorbell().parked() > 0
            && after.sweeps == before.sweeps
            && after.spins == before.spins
            && allocs_after == allocs_before
        {
            quiet = true;
            break;
        }
    }
    assert!(
        quiet,
        "an idle shard must reach a parked state with zero allocations and zero spins"
    );

    // Doorbell wake: the post rings through the channel and the parked
    // worker serves it immediately — far inside the 30 s park bound and
    // the backed-off probe interval, i.e. within one (active) poll
    // interval of the wake rather than one idle timer period.
    pool_mem.write(2048, b"rung!").unwrap();
    let wakes_before = group.shard_snapshots().remove(0).wakes;
    let t0 = Instant::now();
    let h = ch.async_read(1, 2048, 5).unwrap();
    assert!(
        ch.wait(h.id, 5_000_000_000),
        "doorbell must wake the worker"
    );
    assert_eq!(ch.take_response(&h).unwrap(), b"rung!");
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "completion must beat every timer by orders of magnitude"
    );
    assert!(
        group.shard_snapshots().remove(0).wakes > wakes_before,
        "the wake must be attributed to the doorbell"
    );
    group.stop();
}

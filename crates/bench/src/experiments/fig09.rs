//! Figure 9 (a–b): FASTER on YCSB (Zipfian θ=0.99) with six storage
//! backends, for 64 B and 512 B values.
//!
//! ## FASTER operation model
//!
//! Per-op application cost = index lookup + log access + IDevice dispatch
//! (`FASTER_APP_NS`) plus a cross-thread coordination term that grows with
//! the thread count (`COORD_NS_PER_THREAD`) — the paper notes "the
//! end-to-end performance bottleneck becomes FASTER's cross-thread
//! coordination in IDevice" at high thread counts.
//!
//! The storage-hit fraction comes from the configured residency: the hybrid
//! log keeps 5 GB of 18 GB (small values) or 24 GB (large) in memory, and
//! the YCSB keys are scrambled, so the resident set is an effectively
//! uniform sample of the key space — the miss ratio ≈ 1 − resident
//! fraction ("This configuration ensures that most operations are serviced
//! by the storage layer").

use baselines::model::{throughput_mops, Comm, Testbed};
use baselines::ssd::SsdModel;
use workloads::ycsb::YcsbSpec;

use crate::report::{fnum, Table};

pub const THREADS: [u32; 5] = [1, 2, 4, 8, 16];
/// FASTER per-op CPU: hash-index lookup, hybrid-log address resolution,
/// record copy, IDevice bookkeeping.
pub const FASTER_APP_NS: f64 = 500.0;
/// Cross-thread coordination in the shared IDevice completion path.
pub const COORD_NS_PER_THREAD: f64 = 6.0;
/// Local in-memory bytes (5 GB, §8.1).
pub const LOCAL_BYTES: f64 = 5e9;

/// Fraction of operations serviced by the storage layer for a database.
pub fn storage_fraction(spec: &YcsbSpec) -> f64 {
    (1.0 - LOCAL_BYTES / spec.total_bytes() as f64).clamp(0.0, 1.0)
}

/// Per-op FASTER application cost at a thread count.
pub fn faster_app_ns(threads: u32) -> f64 {
    FASTER_APP_NS + COORD_NS_PER_THREAD * threads as f64
}

/// The six Figure 9 backends.
pub fn backends() -> [(&'static str, Backend); 6] {
    [
        ("SSD", Backend::Ssd),
        ("One-sided RDMA (sync)", Backend::Comm(Comm::OneSidedSync)),
        (
            "One-sided RDMA (async)",
            Backend::Comm(Comm::OneSidedAsync { batch: 100 }),
        ),
        // Cowbird-P4 performs no response batching but its message budget
        // does not bind at FASTER rates — the paper finds the two variants
        // "achieve similar performance across different workloads".
        ("Cowbird-P4", Backend::Comm(Comm::CowbirdNoBatch)),
        ("Cowbird-Spot", Backend::Comm(Comm::Cowbird)),
        ("Local memory", Backend::Comm(Comm::LocalMemory)),
    ]
}

#[derive(Clone, Copy)]
pub enum Backend {
    Ssd,
    Comm(Comm),
}

/// FASTER throughput for a backend, MOPS.
pub fn faster_mops(backend: Backend, threads: u32, spec: &YcsbSpec, tb: &Testbed) -> f64 {
    let sf = storage_fraction(spec);
    let app = faster_app_ns(threads);
    match backend {
        Backend::Ssd => {
            SsdModel::testbed().throughput_mops(threads, app, sf, spec.record_size(), &tb.cpu)
        }
        Backend::Comm(c) => throughput_mops(c, threads, app, sf, spec.record_size(), tb, 0),
    }
}

pub fn run() -> Vec<Table> {
    vec![
        sub_figure('a', YcsbSpec::paper_small()),
        sub_figure('b', YcsbSpec::paper_large()),
    ]
}

fn sub_figure(letter: char, spec: YcsbSpec) -> Table {
    let tb = Testbed::paper();
    let mut t = Table::new(
        &format!("Figure 9{letter}"),
        &format!(
            "FASTER YCSB (Zipf 0.99) MOPS, {} B values, {} M records",
            spec.value_size,
            spec.records / 1_000_000
        ),
        &["backend", "1", "2", "4", "8", "16"],
    )
    .with_paper_note(
        "remote memory >= 2.3x over SSD; Cowbird 12-84x over SSD, within 8% of local, up to 40% over async RDMA",
    );
    for (label, backend) in backends() {
        let mut row = vec![label.to_string()];
        for &n in &THREADS {
            row.push(fnum(faster_mops(backend, n, &spec, &tb)));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ratios_hold() {
        for f in run() {
            let ssd = f.cell_f64("SSD", "16").unwrap();
            let sync = f.cell_f64("One-sided RDMA (sync)", "16").unwrap();
            let cowbird = f.cell_f64("Cowbird-Spot", "16").unwrap();
            let local = f.cell_f64("Local memory", "16").unwrap();
            // "utilizing remote memory for FASTER is at least 2.3x faster
            // than SSDs"
            assert!(sync / ssd > 1.5, "{}: sync {sync} ssd {ssd}", f.id);
            // "the speedup with Cowbird ranges from 12x to 84x" (over SSD)
            let speedup = cowbird / ssd;
            assert!((10.0..100.0).contains(&speedup), "{}: {speedup}", f.id);
            // "Cowbird is consistently within 8% of local memory"
            let gap = (local - cowbird) / local;
            assert!(gap < 0.10, "{}: gap {gap}", f.id);
        }
    }

    #[test]
    fn p4_and_spot_are_similar() {
        for f in run() {
            for col in ["1", "4", "16"] {
                let p4 = f.cell_f64("Cowbird-P4", col).unwrap();
                let spot = f.cell_f64("Cowbird-Spot", col).unwrap();
                assert!((p4 - spot).abs() / spot < 0.05, "{}: {p4} vs {spot}", f.id);
            }
        }
    }

    #[test]
    fn cowbird_beats_async_most_at_low_threads() {
        // "the relative overhead of asynchronous one-sided RDMA reduces
        // with higher thread counts".
        let f = &run()[0];
        let adv = |col: &str| {
            f.cell_f64("Cowbird-Spot", col).unwrap()
                / f.cell_f64("One-sided RDMA (async)", col).unwrap()
        };
        let adv1 = adv("1");
        let adv16 = adv("16");
        assert!(adv1 > adv16, "{adv1} vs {adv16}");
        assert!(adv1 > 1.2 && adv1 < 1.8, "up to ~60%: {adv1}");
    }

    #[test]
    fn storage_fraction_matches_configuration() {
        let small = storage_fraction(&YcsbSpec::paper_small());
        let large = storage_fraction(&YcsbSpec::paper_large());
        assert!((small - (1.0 - 5.0 / 18.0)).abs() < 0.01, "{small}");
        assert!(large > small, "larger DB -> more storage hits");
    }
}

//! Figure 2: compute-side CPU time breakdown of a single read — Cowbird
//! versus asynchronous one-sided RDMA (post: lock/doorbell/WQE; poll:
//! lock/CQE).
//!
//! Rather than quoting the cost-model constants, this artifact *drives* a
//! modeled client through the cycle-attribution profiler: every op charges
//! its cost-model nanoseconds into a [`telemetry::CostAccount`], and the
//! figure is reconstructed from the live attribution dump. The per-phase
//! live means are checked against the model constants within
//! [`LIVE_TOLERANCE`], so a regression in either the charging paths or the
//! attribution fold fails the artifact, not just a unit test.

use rdma::cost::CostModel;
use telemetry::{Component, Telemetry};

use crate::report::{fnum, Table};

/// Modeled reads driven per system.
const OPS: u64 = 10_000;
/// Local (non-remote-memory) accesses interleaved per op, modelling the
/// application actually computing on what it fetched.
const LOCAL_ACCESSES: u64 = 10;
/// Live-vs-model tolerance on per-phase mean ns (see EXPERIMENTS.md). The
/// charges are exact integers, so 1% is generous — it exists to absorb
/// f64 folding, not measurement noise.
pub const LIVE_TOLERANCE: f64 = 0.01;

fn check_live(task: &str, live: f64, model_ns: u64) {
    let model = model_ns as f64;
    let rel = (live - model).abs() / model;
    assert!(
        rel <= LIVE_TOLERANCE,
        "fig02: live `{task}` mean {live:.1} ns deviates from model {model} ns \
         by {:.2}% (tolerance {:.0}%)",
        rel * 100.0,
        LIVE_TOLERANCE * 100.0,
    );
}

pub fn run() -> Vec<Table> {
    let m = CostModel::paper_defaults();
    let hub = Telemetry::new(16);
    let baseline = hub.profiler_virtual(0, "baseline_rdma", Component::Client);
    let cowbird = hub.profiler_virtual(1, "cowbird", Component::Client);
    for _ in 0..OPS {
        m.charge_rdma_post(&baseline);
        m.charge_rdma_poll(&baseline);
        m.charge_local_work(&baseline, LOCAL_ACCESSES);
        m.charge_cowbird_post(&cowbird);
        m.charge_cowbird_poll(&cowbird);
        m.charge_local_work(&cowbird, LOCAL_ACCESSES);
    }
    let dump = hub.attribution();
    let live_b = dump.fig2(0);
    let live_c = dump.fig2(1);

    let mut t = Table::new(
        "Figure 2",
        "CPU time of one read on the compute node (ns)",
        &["system", "subtask", "ns", "cumulative ns", "live mean ns"],
    )
    .with_paper_note(
        "RDMA total ~650 ns dominated by lock/doorbell/fence costs; Cowbird an order of magnitude lower",
    );
    let mut cum = 0u64;
    for (task, ns, live) in [
        ("post: lock", m.post_lock_ns, live_b.post_lock_ns),
        (
            "post: doorbell",
            m.post_doorbell_ns,
            live_b.post_doorbell_ns,
        ),
        ("post: wqe", m.post_wqe_ns, live_b.post_wqe_ns),
        ("poll: lock", m.poll_lock_ns, live_b.poll_lock_ns),
        ("poll: cqe", m.poll_cqe_ns, live_b.poll_cqe_ns),
    ] {
        check_live(task, live, ns);
        cum += ns;
        t.push_row(vec![
            "RDMA (async one-sided)".into(),
            task.into(),
            ns.to_string(),
            cum.to_string(),
            fnum(live),
        ]);
    }
    let mut cum = 0u64;
    for (task, ns, live) in [
        ("Cowbird post", m.cowbird_post_ns, live_c.cowbird_post_ns),
        ("Cowbird poll", m.cowbird_poll_ns, live_c.cowbird_poll_ns),
    ] {
        check_live(task, live, ns);
        cum += ns;
        t.push_row(vec![
            "Cowbird".into(),
            task.into(),
            ns.to_string(),
            cum.to_string(),
            fnum(live),
        ]);
    }

    // Freed-cores gauge: the share of compute-node cycles burned on remote
    // memory. The baseline spends roughly half its time posting and polling;
    // Cowbird's 35 ns disappears into the application's own work.
    let frac_b = dump.remote_memory_frac(0);
    let frac_c = dump.remote_memory_frac(1);
    let freed = frac_b - frac_c;
    let reg = telemetry::metrics::global();
    reg.gauge_set(
        "cowbird.profile.remote_mem_frac",
        &[("system", "baseline_rdma")],
        frac_b,
    );
    reg.gauge_set(
        "cowbird.profile.remote_mem_frac",
        &[("system", "cowbird")],
        frac_c,
    );
    reg.gauge_set("cowbird.profile.freed_cores", &[], freed);
    let mut g = Table::new(
        "Figure 2 (freed cores)",
        "share of compute-node CPU cycles spent driving remote memory",
        &["system", "remote-mem fraction"],
    )
    .with_paper_note("Cowbird frees the compute cores the RDMA client burns on post/poll");
    g.push_row(vec!["RDMA (async one-sided)".into(), fnum(frac_b)]);
    g.push_row(vec!["Cowbird".into(), fnum(frac_c)]);
    g.push_row(vec!["freed (per busy core)".into(), fnum(freed)]);

    if let Err(e) = hub.write_attribution("fig02") {
        eprintln!("[fig02: attribution write failed: {e}]");
    }
    vec![t, g]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_keep_the_order_of_magnitude_gap() {
        let t = &run()[0];
        let rdma_total: u64 = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("RDMA"))
            .map(|r| r[2].parse::<u64>().unwrap())
            .sum();
        let cowbird_total: u64 = t
            .rows
            .iter()
            .filter(|r| r[0] == "Cowbird")
            .map(|r| r[2].parse::<u64>().unwrap())
            .sum();
        assert!(rdma_total >= 600);
        assert!(rdma_total / cowbird_total >= 10);
    }

    #[test]
    fn live_reconstruction_matches_the_model_and_frees_cores() {
        // run() itself asserts every live phase mean within LIVE_TOLERANCE
        // of the model constant; here we pin the freed-cores shape.
        let tables = run();
        let g = &tables[1];
        let frac_b = g
            .cell_f64("RDMA (async one-sided)", "remote-mem fraction")
            .unwrap();
        let frac_c = g.cell_f64("Cowbird", "remote-mem fraction").unwrap();
        assert!(
            frac_b > 0.3,
            "baseline must burn cores on remote memory, got {frac_b}"
        );
        assert!(
            frac_c < 0.1,
            "cowbird remote-mem share must be near zero, got {frac_c}"
        );
        assert!(frac_b - frac_c > 0.25);
    }
}

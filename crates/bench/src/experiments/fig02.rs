//! Figure 2: compute-side CPU time breakdown of a single read — Cowbird
//! versus asynchronous one-sided RDMA (post: lock/doorbell/WQE; poll:
//! lock/CQE).

use rdma::cost::CostModel;

use crate::report::Table;

pub fn run() -> Table {
    let m = CostModel::paper_defaults();
    let mut t = Table::new(
        "Figure 2",
        "CPU time of one read on the compute node (ns)",
        &["system", "subtask", "ns", "cumulative ns"],
    )
    .with_paper_note(
        "RDMA total ~650 ns dominated by lock/doorbell/fence costs; Cowbird an order of magnitude lower",
    );
    let mut cum = 0u64;
    for (task, ns) in [
        ("post: lock", m.post_lock_ns),
        ("post: doorbell", m.post_doorbell_ns),
        ("post: wqe", m.post_wqe_ns),
        ("poll: lock", m.poll_lock_ns),
        ("poll: cqe", m.poll_cqe_ns),
    ] {
        cum += ns;
        t.push_row(vec![
            "RDMA (async one-sided)".into(),
            task.into(),
            ns.to_string(),
            cum.to_string(),
        ]);
    }
    let mut cum = 0u64;
    for (task, ns) in [
        ("Cowbird post", m.cowbird_post_ns),
        ("Cowbird poll", m.cowbird_poll_ns),
    ] {
        cum += ns;
        t.push_row(vec![
            "Cowbird".into(),
            task.into(),
            ns.to_string(),
            cum.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_keep_the_order_of_magnitude_gap() {
        let t = run();
        let rdma_total: u64 = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("RDMA"))
            .map(|r| r[2].parse::<u64>().unwrap())
            .sum();
        let cowbird_total: u64 = t
            .rows
            .iter()
            .filter(|r| r[0] == "Cowbird")
            .map(|r| r[2].parse::<u64>().unwrap())
            .sum();
        assert!(rdma_total >= 600);
        assert!(rdma_total / cowbird_total >= 10);
    }
}

//! Figure 13: read latency (median and p99) versus record size for
//! one-sided RDMA (sync / async) and Cowbird (with / without batching) —
//! measured packet-level on the simulated fabric with the real protocol
//! stack.

use baselines::sim_client::{latency_rig, ClientMode, RdmaClientNode};
use simnet::link::LinkParams;
use simnet::time::{Duration, Instant};

use crate::harness::{build_cowbird_rig, export_rig_metrics, CowbirdClientNode, CowbirdRig};
use crate::report::{fnum, Table};

pub const RECORD_SIZES: [u32; 6] = [8, 64, 256, 512, 1024, 2048];
const OPS: u64 = 400;

fn rack() -> LinkParams {
    LinkParams::new(100e9, Duration::from_nanos(1200))
}

/// (median_us, p99_us) for an RDMA client mode.
fn rdma_latency(record: u32, mode: ClientMode, seed: u64) -> (f64, f64) {
    let (mut sim, id) = latency_rig(seed, record, mode, OPS, rack());
    sim.run_until(Some(Instant(Duration::from_secs(2).nanos())));
    let c: &RdmaClientNode = sim.node_ref(id);
    assert_eq!(c.completed(), OPS, "rdma run incomplete");
    (
        c.latency.median() as f64 / 1e3,
        c.latency.p99() as f64 / 1e3,
    )
}

/// (median_us, p99_us) for a Cowbird configuration.
fn cowbird_latency(record: u32, inflight: usize, batch: usize, seed: u64) -> (f64, f64) {
    let (mut sim, id, engine_id) = build_cowbird_rig(CowbirdRig {
        seed,
        record_size: record,
        inflight,
        target_ops: OPS,
        engine_batch: batch,
        probe_interval: Duration::from_micros(2),
        poll_interval: Duration::from_nanos(250),
        link: rack(),
        drop_probability: 0.0,
        watchdog: None,
        coalesce_sge: 0,
        ..Default::default()
    });
    sim.run_until(Some(Instant(Duration::from_secs(2).nanos())));
    // All record sizes of one figure run merge under the same label: the
    // registry diff taken around the whole artifact is its traffic total.
    export_rig_metrics(&sim, id, engine_id, "fig13");
    let c: &CowbirdClientNode = sim.node_ref(id);
    assert_eq!(c.completed(), OPS, "cowbird run incomplete");
    (
        c.latency.median() as f64 / 1e3,
        c.latency.p99() as f64 / 1e3,
    )
}

pub fn run() -> Table {
    let mut t = Table::new(
        "Figure 13",
        "Read latency vs record size: median / p99 (us), packet-level simulation",
        &[
            "record",
            "sync p50",
            "sync p99",
            "async p50",
            "async p99",
            "cowbird-nobatch p50",
            "cowbird-nobatch p99",
            "cowbird-batch p50",
            "cowbird-batch p99",
        ],
    )
    .with_paper_note(
        "unbatched Cowbird similar to sync RDMA (2 extra RTTs + probe interval); batched Cowbird <10us p50, <20us p99, well below async RDMA",
    );
    for (i, &rs) in RECORD_SIZES.iter().enumerate() {
        let seed = 100 + i as u64;
        let (sp50, sp99) = rdma_latency(rs, ClientMode::Closed, seed);
        let (ap50, ap99) = rdma_latency(rs, ClientMode::Batched { size: 100 }, seed);
        let (np50, np99) = cowbird_latency(rs, 1, 1, seed);
        // The client pipelines 100 requests (like the async baseline); the
        // engine flushes response batches of BATCH_SIZE = 16 — header
        // amortization saturates there while completion latency stays low.
        let (bp50, bp99) = cowbird_latency(rs, 100, 16, seed);
        t.push_row(vec![
            rs.to_string(),
            fnum(sp50),
            fnum(sp99),
            fnum(ap50),
            fnum(ap99),
            fnum(np50),
            fnum(np99),
            fnum(bp50),
            fnum(bp99),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        // One representative record size keeps test time sane; the bench
        // target sweeps all six.
        let rs = 512;
        let (sync_p50, _q) = rdma_latency(rs, ClientMode::Closed, 7);
        let (async_p50, async_p99) = rdma_latency(rs, ClientMode::Batched { size: 100 }, 7);
        let (nb_p50, _n99) = cowbird_latency(rs, 1, 1, 7);
        let (b_p50, b_p99) = cowbird_latency(rs, 100, 16, 7);

        // Sync RDMA: a few microseconds.
        assert!(sync_p50 > 2.0 && sync_p50 < 8.0, "sync {sync_p50}");
        // Unbatched Cowbird: above sync (2 extra RTTs + probe interval) but
        // the same order of magnitude.
        assert!(nb_p50 > sync_p50, "nobatch {nb_p50} vs sync {sync_p50}");
        assert!(nb_p50 < sync_p50 * 4.0, "nobatch {nb_p50}");
        // Batched Cowbird beats async RDMA on both p50 and p99.
        assert!(b_p50 < async_p50, "batch {b_p50} vs async {async_p50}");
        assert!(b_p99 < async_p99, "batch {b_p99} vs async {async_p99}");
    }
}

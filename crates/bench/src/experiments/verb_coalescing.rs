//! Verb coalescing: modeled per-op engine cost vs chain/batch width.
//!
//! The flat Figure-2 accounting prices every engine verb at a full RDMA
//! post+poll (600 ns), six verbs per remote op — the 3600 ns floor a
//! verb-at-a-time engine cannot beat. The coalesced pipeline splits that
//! price: one doorbell per *chained* post, one WQE per work request, one
//! SGE entry per extra scatter-gather segment, one CQ poll per chain. This
//! artifact sweeps the chain/batch width 1→32 over read-only, write-only,
//! and mixed adjacent-offset workloads, prices the engine's actual verb
//! stream with the split model, and checks the headline claims: per-op
//! cost is monotone non-increasing in chain width, sits below the flat
//! 6-verb floor, and drops ≥25% below the single-verb baseline by chain 8.
//!
//! The sweep drives [`EngineCore`] synchronously (a loopback fabric), so
//! every verb counter is workload-determined and the asserts are CI-stable.
//! A second table reruns the low-load (one outstanding op) packet-level rig
//! with coalescing on vs off: completion moderation must not tax the
//! quiescent path, so the p99 on/off ratio is bounded at 5%.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::{EngineConfig, EngineCore, FabricOp};
use rdma::cost::CostModel;
use rdma::mem::Region;
use simnet::time::{Duration, Instant};

use crate::harness::{build_cowbird_rig, CowbirdClientNode, CowbirdRig};
use crate::report::{fnum, Table};

/// Chain/batch widths swept (batch size and SGE cap move together).
pub const CHAINS: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Adjacent ops issued per burst (fixed across the sweep so the workload,
/// not the knob, decides how much adjacency is available).
const BURST: usize = 32;
/// Bursts per run.
const ROUNDS: usize = 16;
/// The flat model's per-op floor: six verbs at a full post+poll each.
pub const FLAT_FLOOR_NS: f64 = 6.0 * 600.0;
/// Required improvement over the chain-1 baseline at chain >= 8.
pub const CHAIN8_IMPROVEMENT: f64 = 0.25;
/// Low-load p99 budget: coalescing on vs off.
pub const P99_LOW_LOAD_SLACK: f64 = 1.05;

const POOL_SIZE: usize = 1 << 20;
const REC: u64 = 64;

#[derive(Clone, Copy)]
enum Workload {
    ReadOnly,
    WriteOnly,
    Mixed,
}

impl Workload {
    fn key(self) -> &'static str {
        match self {
            Workload::ReadOnly => "read",
            Workload::WriteOnly => "write",
            Workload::Mixed => "mixed",
        }
    }
}

/// Synchronous loopback fabric (same discipline as the engine's unit
/// harness): FabricOps execute immediately against the channel and pool
/// regions, completions feed straight back into the core.
struct LoopDriver {
    compute: Region,
    pool: Region,
}

impl LoopDriver {
    fn run(&self, core: &mut EngineCore, ops: Vec<FabricOp>) {
        let mut queue = ops;
        while !queue.is_empty() {
            let mut next = Vec::new();
            for op in queue {
                match op {
                    FabricOp::ReadCompute { offset, len, tag } => {
                        let data = self.compute.read_vec(offset, len as usize).unwrap();
                        next.extend(core.on_data(tag, &data));
                    }
                    FabricOp::WriteCompute { offset, data, tag } => {
                        self.compute.write(offset, &data).unwrap();
                        if tag != 0 {
                            next.extend(core.on_data(tag, &[]));
                        }
                    }
                    FabricOp::ReadPool { addr, len, tag, .. } => {
                        let data = self.pool.read_vec(addr, len as usize).unwrap();
                        next.extend(core.on_data(tag, &data));
                    }
                    FabricOp::WritePool { addr, data, .. } => {
                        self.pool.write(addr, &data).unwrap();
                    }
                    FabricOp::ReadPoolSg { addr, parts, .. } => {
                        let mut cursor = addr;
                        for (len, tag) in parts {
                            let data = self.pool.read_vec(cursor, len as usize).unwrap();
                            cursor += u64::from(len);
                            next.extend(core.on_data(tag, &data));
                        }
                    }
                    FabricOp::WritePoolSg { addr, segments, .. } => {
                        let mut cursor = addr;
                        for seg in segments {
                            self.pool.write(cursor, &seg).unwrap();
                            cursor += seg.len() as u64;
                        }
                    }
                }
            }
            queue = next;
        }
    }
}

struct SweepPoint {
    per_op_ns: f64,
    /// Average work requests per doorbell (chain length).
    chain_len: f64,
    /// Average scatter-gather elements per work request.
    sge_per_wr: f64,
}

/// Run one (workload, chain) cell: `ROUNDS` bursts of `BURST` adjacent ops
/// against a chain-wide engine, then price the verb stream with the split
/// cost model.
fn sweep(workload: Workload, chain: usize) -> SweepPoint {
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: 5,
            base: 0,
            size: POOL_SIZE as u64,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let mut ch = Channel::new(0, layout, regions.clone());
    let mut core =
        EngineCore::new(EngineConfig::spot(layout, regions, chain).with_coalesce_sge(chain));
    let driver = LoopDriver {
        compute: ch.region().clone(),
        pool: Region::new(POOL_SIZE),
    };
    for slot in 0..(POOL_SIZE as u64 / REC) {
        driver.pool.write(slot * REC, &slot.to_le_bytes()).unwrap();
    }

    // Reads walk the lower half of the pool, writes the upper half:
    // adjacent offsets within each burst (the coalescible common case —
    // think sequential scans and log appends), no read/write overlap so
    // the consistency gate never serializes the stream.
    let write_base = (POOL_SIZE as u64) / 2;
    let mut handles = Vec::new();
    let mut ops = 0u64;
    for round in 0..ROUNDS as u64 {
        let base = (round * BURST as u64 * REC) % write_base;
        for i in 0..BURST as u64 {
            let addr = base + i * REC;
            match workload {
                Workload::ReadOnly => {
                    handles.push(ch.async_read(1, addr, REC as u32).unwrap());
                }
                Workload::WriteOnly => {
                    ch.async_write(1, write_base + addr, &[round as u8; REC as usize])
                        .unwrap();
                }
                Workload::Mixed => {
                    if i < BURST as u64 / 2 {
                        handles.push(ch.async_read(1, addr, REC as u32).unwrap());
                    } else {
                        ch.async_write(1, write_base + addr, &[round as u8; REC as usize])
                            .unwrap();
                    }
                }
            }
            ops += 1;
        }
        let probe = core.on_probe_due();
        driver.run(&mut core, probe);
    }
    ch.refresh();
    assert_eq!(
        ch.in_flight(),
        (0, 0),
        "synchronous sweep must drain every burst"
    );
    for h in &handles {
        let data = ch.take_response(h).unwrap();
        assert_eq!(data.len(), REC as usize);
    }

    // Price the verb stream with the split model: one doorbell per chained
    // post, one WQE per WR, one SGE entry beyond the first per WR, one CQ
    // poll per chain plus one CQE per WR.
    let m = CostModel::paper_defaults();
    let s = &core.stats;
    let post_ns = s.chain_posts * (m.post_lock_ns + m.post_doorbell_ns)
        + s.chained_wrs * m.post_wqe_ns
        + (s.sge_total - s.chained_wrs) * m.post_sge_ns;
    let poll_ns = s.chain_posts * m.poll_lock_ns + s.chained_wrs * m.poll_cqe_ns;
    let per_op_ns = (post_ns + poll_ns) as f64 / ops as f64;
    let chain_len = s.chained_wrs as f64 / (s.chain_posts.max(1)) as f64;
    let sge_per_wr = s.sge_total as f64 / (s.chained_wrs.max(1)) as f64;

    let c = chain.to_string();
    let labels: &[(&str, &str)] = &[("workload", workload.key()), ("chain", c.as_str())];
    let reg = telemetry::metrics::global();
    reg.gauge_set("cowbird.engine.coalesce.per_op_model_ns", labels, per_op_ns);
    reg.gauge_set("cowbird.engine.coalesce.chain_len", labels, chain_len);
    reg.gauge_set("cowbird.engine.coalesce.sge_per_wr", labels, sge_per_wr);

    SweepPoint {
        per_op_ns,
        chain_len,
        sge_per_wr,
    }
}

/// The low-load rig: one outstanding op over the packet-level simulator,
/// coalescing on (`sge` 16) vs off (`sge` 1). Virtual-time latency, so the
/// comparison is exact and CI-stable.
fn low_load(coalesce_sge: usize) -> (u64, u64) {
    let (mut sim, client_id, _engine) = build_cowbird_rig(CowbirdRig {
        seed: 7,
        target_ops: 400,
        inflight: 1,
        engine_batch: 8,
        coalesce_sge,
        ..Default::default()
    });
    sim.run_until(Some(Instant(Duration::from_millis(100).nanos())));
    let client: &CowbirdClientNode = sim.node_ref(client_id);
    assert_eq!(client.completed(), 400, "low-load rig must finish");
    (client.latency.median(), client.latency.p99())
}

pub fn run() -> Vec<Table> {
    vec![chain_sweep(), low_load_latency()]
}

/// Chain/batch 1→32 over the three workloads.
pub fn chain_sweep() -> Table {
    let mut t = Table::new(
        "Verb coalescing 1",
        "modeled per-op engine cost vs chain width (flat 6-verb floor: 3600 ns)",
        &[
            "chain",
            "read ns/op",
            "write ns/op",
            "mixed ns/op",
            "wrs/doorbell",
            "sge/wr",
        ],
    )
    .with_paper_note(
        "extension of Fig. 2: WR chaining + scatter-gather amortize the doorbell and CQ poll; \
         the flat model charges every verb a full 600 ns post+poll",
    );
    for chain in CHAINS {
        let read = sweep(Workload::ReadOnly, chain);
        let write = sweep(Workload::WriteOnly, chain);
        let mixed = sweep(Workload::Mixed, chain);
        // Structure columns come from the mixed workload: it exercises both
        // amortization axes (payload-fetch runs chain, adjacent pool ops
        // gather), where read-only collapses a burst into one SG verb and
        // leaves almost nothing to chain.
        t.push_row(vec![
            chain.to_string(),
            fnum(read.per_op_ns),
            fnum(write.per_op_ns),
            fnum(mixed.per_op_ns),
            fnum(mixed.chain_len),
            fnum(mixed.sge_per_wr),
        ]);
    }
    t
}

/// Completion moderation must not tax the quiescent path.
pub fn low_load_latency() -> Table {
    let mut t = Table::new(
        "Verb coalescing 2",
        "low-load latency (1 outstanding op): moderation must not defer quiescent completions",
        &["mode", "p50 ns", "p99 ns"],
    )
    .with_paper_note(
        "adaptive red-block deadline: defer only while pool reads or payload fetches are in flight",
    );
    let reg = telemetry::metrics::global();
    for (mode, sge) in [("off", 1usize), ("on", 16usize)] {
        let (p50, p99) = low_load(sge);
        reg.gauge_set(
            "cowbird.engine.coalesce.low_load_p99_ns",
            &[("coalesce", mode)],
            p99 as f64,
        );
        t.push_row(vec![mode.to_string(), p50.to_string(), p99.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_op_cost_is_monotone_and_beats_the_flat_floor() {
        let t = chain_sweep();
        for col in ["read ns/op", "write ns/op", "mixed ns/op"] {
            let series: Vec<f64> = CHAINS
                .iter()
                .map(|c| t.cell_f64(&c.to_string(), col).unwrap())
                .collect();
            for w in series.windows(2) {
                assert!(
                    w[1] <= w[0] * 1.001,
                    "{col} must be monotone non-increasing in chain width: {series:?}"
                );
            }
            for (c, v) in CHAINS.iter().zip(&series) {
                assert!(
                    *v < FLAT_FLOOR_NS,
                    "{col} at chain {c} ({v} ns) must beat the flat {FLAT_FLOOR_NS} ns floor"
                );
            }
            let baseline = series[0];
            let chain8 = t.cell_f64("8", col).unwrap();
            assert!(
                chain8 <= baseline * (1.0 - CHAIN8_IMPROVEMENT),
                "{col}: chain 8 ({chain8} ns) must sit >= {CHAIN8_IMPROVEMENT:.0$}% below the \
                 single-verb baseline ({baseline} ns)",
                0
            );
        }
        // The knob actually engages: wide chains carry multiple WRs per
        // doorbell and multiple SGEs per WR.
        assert!(t.cell_f64("32", "wrs/doorbell").unwrap() > 1.5);
        assert!(t.cell_f64("32", "sge/wr").unwrap() > 1.5);
        assert!((t.cell_f64("1", "wrs/doorbell").unwrap() - 1.0).abs() < 1e-9);
        assert!((t.cell_f64("1", "sge/wr").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moderation_does_not_regress_low_load_p99() {
        let t = low_load_latency();
        let off = t.cell_f64("off", "p99 ns").unwrap();
        let on = t.cell_f64("on", "p99 ns").unwrap();
        assert!(
            on <= off * P99_LOW_LOAD_SLACK,
            "low-load p99 with coalescing on ({on} ns) exceeds off ({off} ns) \
             by more than {:.0}%",
            (P99_LOW_LOAD_SLACK - 1.0) * 100.0
        );
    }
}

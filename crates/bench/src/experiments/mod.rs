//! One module per paper artifact. `all()` runs everything in order.

pub mod ablation;
pub mod chase;
pub mod engine_scaling;
pub mod fig01;
pub mod fig02;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod sim_throughput;
pub mod table1;
pub mod table5;
pub mod tail_latency;
pub mod validate;
pub mod verb_coalescing;

use crate::report::Table;

/// A lazily runnable artifact generator.
pub type ArtifactFn = fn() -> Vec<Table>;

/// Every artifact as `(key, runner)` in paper order. The key is the
/// filter shorthand the bench target matches on (`fig02`, `table5`, ...),
/// and the runner is invoked only for selected artifacts — so filtering to
/// one figure no longer pays for the heavyweight DES runs of all the
/// others.
pub fn artifacts() -> Vec<(&'static str, ArtifactFn)> {
    vec![
        ("fig01", || vec![fig01::run()]),
        ("fig02", fig02::run),
        ("table1", || vec![table1::run()]),
        ("fig08", fig08::run),
        ("fig09", fig09::run),
        ("fig10", fig10::run),
        ("fig11", || vec![fig11::run()]),
        ("fig12", || vec![fig12::run()]),
        ("fig13", || vec![fig13::run()]),
        ("fig14", || vec![fig14::run()]),
        ("table5", || vec![table5::run()]),
        ("validate", validate::run),
        ("ablation", ablation::run),
        ("chase", chase::run),
        ("engine_scaling", engine_scaling::run),
        ("verb_coalescing", verb_coalescing::run),
        ("tail_latency", tail_latency::run),
        ("sim_throughput", sim_throughput::run),
    ]
}

/// Run every experiment (the heavyweight DES ones included).
pub fn all() -> Vec<Table> {
    artifacts().into_iter().flat_map(|(_, run)| run()).collect()
}

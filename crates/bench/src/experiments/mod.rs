//! One module per paper artifact. `all()` runs everything in order.

pub mod ablation;
pub mod fig01;
pub mod fig02;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;
pub mod table5;
pub mod validate;

use crate::report::Table;

/// Run every experiment (the heavyweight DES ones included).
pub fn all() -> Vec<Table> {
    let mut out = vec![fig01::run(), fig02::run(), table1::run()];
    out.extend(fig08::run());
    out.extend(fig09::run());
    out.extend(fig10::run());
    out.push(fig11::run());
    out.push(fig12::run());
    out.push(fig13::run());
    out.push(fig14::run());
    out.push(table5::run());
    out.extend(validate::run());
    out.extend(ablation::run());
    out
}

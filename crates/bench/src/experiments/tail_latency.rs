//! Tail-latency watchdog + automated phase attribution, proven end to end.
//!
//! Three rig runs each plant one distinct degradation and nothing else; the
//! artifact then checks that the machinery under test — the sliding-window
//! SLO watchdog, the request-scoped flight dump it triggers, and the
//! phase-waterfall tail report — blames the *correct* pipeline phase:
//!
//! | scenario          | planted fault                              | blame       |
//! |-------------------|--------------------------------------------|-------------|
//! | `link_jitter`     | jitter on both engine ↔ pool links         | fabric      |
//! | `hot_shard`       | oversubscribed shard (sparse probe sweeps) | ring_wait   |
//! | `ring_backpressure` | tiny response ring + a busy app core     | completion  |
//!
//! Each run wires a [`Telemetry`] hub through the rig (virtual-clock
//! recorders on the client channel and the engine core), feeds every
//! completion to the watchdog, and — on the first p99.9 violation — writes
//! a flight dump scoped around the offending request's span, exactly what
//! an operator would open. The attribution check runs on the *full* merged
//! timeline: [`tail_report`] decomposes the slowest-K requests into the
//! client post → ring wait → engine sweep → fabric → pool → completion
//! waterfall and must name the planted phase as dominant.

use simnet::fault::FaultScript;
use simnet::sim::Sim;
use simnet::time::{Duration, Instant};
use telemetry::{tail_report, FlightDump, TailPhase, Telemetry};

use cowbird::layout::ChannelLayout;

use crate::harness::{
    build_cowbird_rig_links, export_rig_metrics, CowbirdClientNode, CowbirdRig, RigLinks,
};
use crate::report::Table;

/// Slowest requests decomposed per scenario.
const SLOW_K: usize = 16;
/// Context kept around the flagged request's span in the triggered dump.
const DUMP_PAD_NS: u64 = 20_000;
/// Watchdog: `(slo p99.9 ns, min samples, cooldown samples)`. The SLO sits
/// well above the healthy rig's tail (~6 µs end to end) and well below
/// every planted degradation, so a violation is a real signal in all three
/// scenarios and the baseline never fires.
const TAIL_SLO: (u64, u64, u64) = (15_000, 64, 128);

struct Outcome {
    name: &'static str,
    fault: &'static str,
    expected: TailPhase,
    dominant: TailPhase,
    violations: u64,
    p999_ns: u64,
    dominant_share: f64,
}

fn run_scenario(
    name: &'static str,
    fault: &'static str,
    expected: TailPhase,
    mut cfg: CowbirdRig,
    plant: impl FnOnce(&mut Sim, &RigLinks),
) -> Outcome {
    let hub = Telemetry::new(1 << 15);
    cfg.trace = Some(hub.clone());
    cfg.tail_slo = Some(TAIL_SLO);
    let target_ops = cfg.target_ops;
    let (mut sim, client_id, engine_id, links) = build_cowbird_rig_links(cfg);
    plant(&mut sim, &links);
    sim.run_until(Some(Instant(Duration::from_millis(200).nanos())));

    let client: &CowbirdClientNode = sim.node_ref(client_id);
    assert_eq!(
        client.completed(),
        target_ops,
        "tail_latency[{name}]: degradations slow requests down, they must not lose them"
    );
    assert!(
        !client.tail_violations.is_empty(),
        "tail_latency[{name}]: the planted degradation must trip the SLO watchdog"
    );

    // The watchdog's reflex: snapshot the flight recorder around the first
    // flagged request (plus padding), like an operator would want on-call.
    let first = &client.tail_violations[0];
    if let Err(e) =
        hub.write_req_flight_dump(&format!("tail_latency_{name}"), first.req, DUMP_PAD_NS)
    {
        eprintln!("[tail_latency[{name}]: flight dump write failed: {e}]");
    }

    // Attribution over the full merged timeline (the waterfall needs the
    // non-request-scoped sweep events too, not just the flagged span).
    let events = hub.dump().events;
    let report = tail_report(&events, SLOW_K);
    let dominant = report
        .dominant()
        .expect("tail report must decompose at least one request");
    assert_eq!(
        dominant,
        expected,
        "tail_latency[{name}]: planted {fault}, expected dominant phase {} but attribution blamed {}\n{}",
        expected.name(),
        dominant.name(),
        report.to_text(),
    );
    let dir = FlightDump::default_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(
            dir.join(format!("tail_latency_{name}.waterfall.txt")),
            report.to_text(),
        );
    }

    // Metrics: the standard rig surfaces plus the watchdog's window
    // quantiles, all under the scenario's run label.
    export_rig_metrics(&sim, client_id, engine_id, name);
    let reg = telemetry::metrics::global();
    if let Some(wd) = client.tail_watchdog() {
        wd.export(reg, &[("run", name)]);
    }

    let total: u64 = report.phase_totals_ns.iter().sum();
    Outcome {
        name,
        fault,
        expected,
        dominant,
        violations: client.tail_violations.len() as u64,
        p999_ns: client.latency.p999(),
        dominant_share: if total == 0 {
            0.0
        } else {
            report.phase_totals_ns[dominant as usize] as f64 / total as f64
        },
    }
}

pub fn run() -> Vec<Table> {
    let mut outcomes = Vec::new();

    // Fabric degradation: a congested engine ↔ pool path. Both directions
    // pick up 0–40 µs of FIFO-preserving delivery jitter; everything the
    // engine does on the compute side stays fast, so the excess latency
    // lands squarely between ReadExecuted and ComputeWrite.
    outcomes.push(run_scenario(
        "link_jitter",
        "0-40 us delivery jitter on engine<->pool",
        TailPhase::Fabric,
        CowbirdRig {
            seed: 11,
            target_ops: 600,
            inflight: 8,
            engine_batch: 8,
            probe_interval: Duration::from_micros(2),
            poll_interval: Duration::from_nanos(250),
            ..Default::default()
        },
        |sim, links| {
            let (fwd, rev) = links.engine_pool;
            let script = FaultScript::new()
                .link_jitter(Instant::ZERO, fwd, 40_000)
                .link_jitter(Instant::ZERO, rev, 40_000);
            sim.apply_fault_script(&script);
        },
    ));

    // Hot shard: the engine core serving this channel is oversubscribed, so
    // its probe sweep comes around only every 40 µs (modelling a shard busy
    // with other channels). Requests sit parsed-but-unswept in the ring.
    outcomes.push(run_scenario(
        "hot_shard",
        "oversubscribed shard: 40 us between probe sweeps",
        TailPhase::RingWait,
        CowbirdRig {
            seed: 12,
            target_ops: 600,
            inflight: 8,
            engine_batch: 8,
            probe_interval: Duration::from_micros(40),
            poll_interval: Duration::from_nanos(250),
            ..Default::default()
        },
        |_sim, _links| {},
    ));

    // Ring backpressure: a tiny response ring (4 × 64 B records in flight)
    // and an application core that only polls every 25 µs. Responses land
    // fast but sit in the rdata ring until the next poll, so the tail is
    // all completion lag — and the full ring throttles issue, which is the
    // backpressure loop closing.
    outcomes.push(run_scenario(
        "ring_backpressure",
        "tiny rdata ring + 25 us between client polls",
        TailPhase::Completion,
        CowbirdRig {
            seed: 13,
            target_ops: 400,
            record_size: 64,
            inflight: 16,
            engine_batch: 8,
            probe_interval: Duration::from_micros(1),
            poll_interval: Duration::from_micros(25),
            layout: ChannelLayout::tiny(),
            ..Default::default()
        },
        |_sim, _links| {},
    ));

    let mut t = Table::new(
        "Tail latency",
        "planted degradations and the phase the tail attribution blames",
        &[
            "scenario",
            "planted fault",
            "expected",
            "dominant",
            "dominant share",
            "violations",
            "p99.9 ns",
        ],
    )
    .with_paper_note(
        "beyond the paper: Clio-style tail SLO tracking with automated phase attribution",
    );
    for o in &outcomes {
        t.push_row(vec![
            o.name.into(),
            o.fault.into(),
            o.expected.name().into(),
            o.dominant.name().into(),
            crate::report::fnum(o.dominant_share),
            o.violations.to_string(),
            o.p999_ns.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_degradations_are_attributed_correctly() {
        // run() asserts per-scenario that the dominant phase matches the
        // planted fault; here we pin the artifact's shape and that the
        // watchdog actually fired everywhere.
        let t = &run()[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[2], row[3], "expected vs dominant for {}", row[0]);
            assert!(
                row[5].parse::<u64>().unwrap() >= 1,
                "watchdog must fire for {}",
                row[0]
            );
        }
        // The triggered request-scoped dumps exist where CI collects them.
        let dir = telemetry::FlightDump::default_dir();
        for name in ["link_jitter", "hot_shard", "ring_backpressure"] {
            let p = dir.join(format!("tail_latency_{name}.json"));
            assert!(p.exists(), "missing triggered flight dump {}", p.display());
        }
    }
}

//! Dependent-op GET: depth × hit-rate sweep of the pointer-chase ISA.
//!
//! The kvstore's remote-index GET classically pays two engine round trips
//! per storage miss — probe the mirrored hash slot, then fetch the record
//! it points at. The `ReadIndirect` chase verb collapses both into one
//! trip: the engine dereferences the slot pool-side and returns the record.
//! This artifact runs the real [`FasterKv`] twice per configuration —
//! chase on and chase off, identical Zipf workload — and prices every
//! device round trip with the split RDMA cost model, so the headline
//! numbers (`kv_get_per_op_ns`, `kv_get_round_trips`) are modeled cost,
//! not wall-clock noise.
//!
//! Two axes:
//!
//! * **Chain depth** — keys per hash bucket. A cold GET for the key at
//!   chain position `j` (1 = head) pays `j` record hops; the baseline adds
//!   the slot probe on top. Depth 1 is the paper-style point query where
//!   the chase win is largest.
//! * **Hit rate** — the fraction of GETs served from the in-memory log
//!   window, controlled by how much of the Zipf mass is re-admitted after
//!   the eviction fill and *measured*, never assumed.
//!
//! Both stores must agree on every single read (`assert_eq!` per op): the
//! chase is an execution strategy, not a semantic change.

use kvstore::{FasterKv, GetStats, HashIndex, LocalMemoryDevice, RemoteIndex, StoreConfig};
use rdma::cost::CostModel;

use crate::report::{fnum, Table};

/// GETs issued per configuration (per store).
const GETS: u64 = 4_000;
/// Distinct keys in the Zipf population.
const POPULATION: usize = 64;
/// Zipf skew (s = 1.0, the classic YCSB-style hot-key curve).
const ZIPF_S: f64 = 1.0;
/// Mirror base well above anything the 16 KiB-window log reaches.
const MIRROR_BASE: u64 = 1 << 20;
/// Acceptance bar: modeled per-GET cost saving of the one-trip chase over
/// the two-trip baseline at depth 1 and ≥ 90% hit rate.
pub const CHASE_SAVING_FLOOR: f64 = 0.30;

fn store(chase: bool) -> FasterKv<LocalMemoryDevice> {
    FasterKv::new(
        StoreConfig {
            memory_per_shard: 16 << 10,
            mutable_fraction: 0.25,
            index_slots: 1 << 12,
            max_value_bytes: 256,
            remote_index: Some(RemoteIndex {
                base: MIRROR_BASE,
                chase,
            }),
        },
        vec![LocalMemoryDevice::new()],
    )
}

/// `buckets` pairwise-distinct hash buckets of exactly `depth` keys each,
/// plus `fillers` eviction keys from yet other buckets — so chain depth is
/// exactly the configured one and fillers never sit in a target chain.
fn keyset(depth: usize, buckets: usize, fillers: usize) -> (Vec<Vec<u64>>, Vec<u64>) {
    let scratch = HashIndex::new(1 << 12);
    let mut by_slot: std::collections::HashMap<usize, Vec<u64>> = std::collections::HashMap::new();
    for k in 1u64..200_000 {
        by_slot.entry(scratch.slot_of(k)).or_default().push(k);
    }
    let mut slots: Vec<usize> = by_slot
        .iter()
        .filter(|(_, v)| v.len() >= depth)
        .map(|(&s, _)| s)
        .collect();
    slots.sort_unstable();
    assert!(slots.len() >= buckets + fillers, "keyspace scan too small");
    let target: Vec<Vec<u64>> = slots[..buckets]
        .iter()
        .map(|s| by_slot[s][..depth].to_vec())
        .collect();
    let fill: Vec<u64> = slots[buckets..buckets + fillers]
        .iter()
        .map(|s| by_slot[s][0])
        .collect();
    (target, fill)
}

/// Zipf(s) sampler over ranks `0..n` via inverse-CDF binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Deterministic xorshift64* — the sweep must replay bit-identically.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct SweepPoint {
    hit_rate: f64,
    base_trips_per_get: f64,
    chase_trips_per_get: f64,
    base_ns: f64,
    chase_ns: f64,
    chase_fallbacks: u64,
}

/// Modeled device-path cost per cold GET: every round trip pays the
/// Cowbird post/poll plus the fabric flight, every pool-side memory touch
/// (slot dereference or record read) pays one hop charge. A chase trip
/// touches the pool twice (slot + record), so its pool-access count is
/// `round_trips + chase_gets`.
fn per_cold_get_ns(m: &CostModel, d: &GetStats) -> f64 {
    let cold = (d.gets - d.local_hits).max(1);
    m.dependent_get(d.round_trips, d.round_trips + d.chase_gets)
        .nanos() as f64
        / cold as f64
}

/// Run the identical Zipf workload through a chase-on and a chase-off
/// store and fold the measured trip counts into modeled per-GET cost.
/// `hot_frac` is the share of the (rank-ordered) population re-admitted to
/// the log window after the eviction fill — the hit-rate knob.
fn sweep(depth: usize, hot_frac: f64, seed: u64) -> SweepPoint {
    let buckets = POPULATION / depth;
    let (target, fillers) = keyset(depth, buckets, 1500);
    let keys: Vec<u64> = target.iter().flatten().copied().collect();

    let on = store(true);
    let off = store(false);
    for kv in [&on, &off] {
        // Chain order: within a bucket, later upserts chain to earlier
        // ones, so bucket position 0 ends deepest and the last key is the
        // head.
        for bucket in &target {
            for &k in bucket {
                kv.upsert(k, &k.to_le_bytes());
            }
        }
        for &f in &fillers {
            kv.upsert(f, &[0xEE; 64]);
        }
        let (_, evictions) = kv.log_stats();
        assert!(evictions > 0, "filler must evict the window");
        // Re-admit the hottest ranks so roughly `hot_frac` of the Zipf
        // mass resolves locally. Re-upserting makes the new version the
        // chain head; colder versions stay on the device.
        let hot = (hot_frac * keys.len() as f64).round() as usize;
        for &k in &keys[..hot] {
            kv.upsert(k, &k.to_le_bytes());
        }
    }

    let zipf = Zipf::new(keys.len(), ZIPF_S);
    let mut rng = Rng(seed | 1);
    let (on0, off0) = (on.get_stats(), off.get_stats());
    for _ in 0..GETS {
        let k = keys[zipf.sample(rng.next_f64())];
        let a = on.read_blocking(k);
        let b = off.read_blocking(k);
        assert_eq!(a, b, "chase-on and chase-off must agree on key {k}");
        assert_eq!(a, Some(k.to_le_bytes().to_vec()));
    }
    let don = diff(&on.get_stats(), &on0);
    let doff = diff(&off.get_stats(), &off0);
    assert_eq!(don.gets, GETS);
    assert_eq!(doff.gets, GETS);
    assert_eq!(
        don.local_hits, doff.local_hits,
        "identical workloads must hit the window identically"
    );

    let m = CostModel::paper_defaults();
    let cold = (don.gets - don.local_hits).max(1);
    SweepPoint {
        hit_rate: don.local_hits as f64 / don.gets as f64,
        base_trips_per_get: doff.round_trips as f64 / cold as f64,
        chase_trips_per_get: don.round_trips as f64 / cold as f64,
        base_ns: per_cold_get_ns(&m, &doff),
        chase_ns: per_cold_get_ns(&m, &don),
        chase_fallbacks: don.chase_fallbacks,
    }
}

fn diff(after: &GetStats, before: &GetStats) -> GetStats {
    GetStats {
        gets: after.gets - before.gets,
        local_hits: after.local_hits - before.local_hits,
        round_trips: after.round_trips - before.round_trips,
        chase_gets: after.chase_gets - before.chase_gets,
        chase_fallbacks: after.chase_fallbacks - before.chase_fallbacks,
    }
}

pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Chase",
        "dependent-op GET: modeled per-GET device cost, chase vs probe-then-fetch",
        &[
            "depth/hot",
            "hit rate",
            "trips/GET base",
            "trips/GET chase",
            "per-GET ns base",
            "per-GET ns chase",
            "saving",
        ],
    )
    .with_paper_note(
        "extension: a bounded pool-side pointer chase collapses the kvstore's \
         two-trip GET to one round trip; ≥30% modeled cost saving at depth 1",
    );

    let mut headline: Option<SweepPoint> = None;
    for (depth, hot_frac) in [
        (1usize, 0.5f64),
        (1, 0.9),
        (2, 0.5),
        (2, 0.9),
        (4, 0.5),
        (4, 0.9),
    ] {
        let p = sweep(depth, hot_frac, 0x9E3779B97F4A7C15 ^ (depth as u64) << 8);
        let saving = (p.base_ns - p.chase_ns) / p.base_ns;
        if depth == 1 {
            // The headline configuration: point GETs, chain depth 1. The
            // chase must be *exactly* one trip per cold GET, the baseline
            // exactly two, with zero fallbacks.
            assert_eq!(p.chase_fallbacks, 0, "depth-1 chase must not fall back");
            assert!(
                (p.chase_trips_per_get - 1.0).abs() < 1e-9,
                "depth-1 chase GET must be one round trip, got {}",
                p.chase_trips_per_get
            );
            assert!(
                (p.base_trips_per_get - 2.0).abs() < 1e-9,
                "depth-1 baseline GET must be two round trips, got {}",
                p.base_trips_per_get
            );
            assert!(
                saving >= CHASE_SAVING_FLOOR,
                "chase saving {saving:.3} below the {CHASE_SAVING_FLOOR} floor \
                 (base {} ns, chase {} ns)",
                p.base_ns,
                p.chase_ns
            );
            if hot_frac >= 0.9 {
                assert!(
                    p.hit_rate >= 0.9,
                    "hot_frac 0.9 must yield ≥90% hit rate, got {}",
                    p.hit_rate
                );
                headline = Some(SweepPoint { ..p });
            }
        }
        t.push_row(vec![
            format!("{depth}/{hot_frac}"),
            fnum(p.hit_rate),
            fnum(p.base_trips_per_get),
            fnum(p.chase_trips_per_get),
            fnum(p.base_ns),
            fnum(p.chase_ns),
            format!("{:.1}%", saving * 100.0),
        ]);
    }

    // Headline metrics join the hard-gated BENCH trajectory (the
    // comparator treats both as lower-is-better): modeled device cost per
    // cold GET and round trips per cold GET at the flagship configuration
    // (depth 1, ≥90% hit rate).
    let h = headline.expect("depth-1 hot-0.9 row ran");
    let reg = telemetry::metrics::global();
    reg.gauge_set(
        "cowbird.kv.chase.kv_get_per_op_ns",
        &[("mode", "chase")],
        h.chase_ns,
    );
    reg.gauge_set(
        "cowbird.kv.chase.kv_get_per_op_ns",
        &[("mode", "baseline")],
        h.base_ns,
    );
    reg.gauge_set(
        "cowbird.kv.chase.kv_get_round_trips_count",
        &[("mode", "chase")],
        h.chase_trips_per_get,
    );
    reg.gauge_set(
        "cowbird.kv.chase.kv_get_round_trips_count",
        &[("mode", "baseline")],
        h.base_trips_per_get,
    );

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_one_chase_halves_trips_and_clears_the_saving_floor() {
        // run() itself asserts the acceptance bars (1 vs 2 trips, ≥30%
        // saving, zero fallbacks, per-op observational equivalence); here
        // we pin the table shape and the sweep's monotonicity.
        let t = &run()[0];
        assert_eq!(t.rows.len(), 6);
        let base = t.cell_f64("1/0.9", "per-GET ns base").unwrap();
        let chase = t.cell_f64("1/0.9", "per-GET ns chase").unwrap();
        assert!(chase < base);
        let hit_lo = t.cell_f64("1/0.5", "hit rate").unwrap();
        let hit_hi = t.cell_f64("1/0.9", "hit rate").unwrap();
        assert!(
            hit_hi > hit_lo,
            "re-admitting more Zipf mass must raise the hit rate ({hit_lo} vs {hit_hi})"
        );
    }

    #[test]
    fn deeper_chains_still_save_but_less() {
        let t = &run()[0];
        let s = |row: &str| {
            let b = t.cell_f64(row, "per-GET ns base").unwrap();
            let c = t.cell_f64(row, "per-GET ns chase").unwrap();
            (b - c) / b
        };
        let s1 = s("1/0.5");
        let s4 = s("4/0.5");
        assert!(s1 > s4, "depth-1 saving {s1} must exceed depth-4 {s4}");
        assert!(s4 > 0.0, "the chase must still win at depth 4, got {s4}");
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let z = Zipf::new(64, 1.0);
        let mut rng = Rng(7);
        let mut counts = [0u64; 64];
        for _ in 0..10_000 {
            counts[z.sample(rng.next_f64())] += 1;
        }
        assert!(counts[0] > counts[63] * 4, "rank 0 must dominate rank 63");
        assert_eq!(counts.iter().sum::<u64>(), 10_000);
    }
}

//! Figure 11: FASTER throughput with Redy versus Cowbird-Spot (YCSB,
//! 64-byte records, uniform keys, 1 GB local memory). Redy's pinned I/O
//! threads compete for cores; past 8 application threads the machine is
//! "out of cores" and Redy stops scaling.

use baselines::model::{throughput_mops, Comm, Testbed};
use baselines::redy::RedyModel;
use workloads::ycsb::YcsbSpec;

use crate::experiments::fig09::faster_app_ns;
use crate::report::{fnum, Table};

/// 1 GB local memory (vs 5 GB elsewhere) — nearly everything hits storage.
fn storage_fraction() -> f64 {
    let spec = YcsbSpec::fig11_redy();
    (1.0 - 1e9 / spec.total_bytes() as f64).clamp(0.0, 1.0)
}

pub fn run() -> Table {
    let tb = Testbed::paper();
    let redy = RedyModel::paper();
    let sf = storage_fraction();
    let mut t = Table::new(
        "Figure 11",
        "FASTER YCSB (uniform, 64 B, 1 GB local): Redy vs Cowbird-Spot (MOPS)",
        &["threads", "Redy", "Redy I/O threads", "Cowbird-Spot"],
    )
    .with_paper_note(
        "Redy flattens past 8 threads (out of cores); Cowbird keeps every core for the application (~1.6x)",
    );
    for n in [1u32, 2, 4, 8, 16] {
        let app = faster_app_ns(n);
        let r = redy.throughput_mops(n, app, sf, &tb);
        let c = throughput_mops(Comm::Cowbird, n, app, sf, 64, &tb, 0);
        t.push_row(vec![
            n.to_string(),
            fnum(r),
            redy.io_threads(n).to_string(),
            fnum(c),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cowbird_wins_and_redy_stalls() {
        let t = run();
        let redy16 = t.cell_f64("16", "Redy").unwrap();
        let redy8 = t.cell_f64("8", "Redy").unwrap();
        let cb16 = t.cell_f64("16", "Cowbird-Spot").unwrap();
        let cb8 = t.cell_f64("8", "Cowbird-Spot").unwrap();
        // Redy out of cores: no meaningful gain 8 -> 16.
        assert!(redy16 / redy8 < 1.15, "{redy8} -> {redy16}");
        // Cowbird still scales into hyper-threads.
        assert!(cb16 / cb8 > 1.1, "{cb8} -> {cb16}");
        // Advantage at full scale ~1.6x.
        let adv = cb16 / redy16;
        assert!((1.3..2.5).contains(&adv), "advantage {adv}");
    }

    #[test]
    fn redy_io_threads_grow_with_app_threads() {
        let t = run();
        assert_eq!(t.cell("16", "Redy I/O threads"), Some("8"));
        assert_eq!(t.cell("2", "Redy I/O threads"), Some("1"));
    }
}

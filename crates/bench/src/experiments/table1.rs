//! Table 1: on-demand vs spot prices for 4-vCPU/16 GB VMs, plus the
//! cost-efficiency computation the paper argues from (§2.2).

use crate::costmodel::{engine_cost_per_gop, table1_prices, GCP_SPOT_VCPU_HOUR};
use crate::report::{fnum, Table};

pub fn run() -> Table {
    let mut t = Table::new(
        "Table 1",
        "On-demand vs spot prices (4 vCPU / 16 GB), 2023-07-24",
        &[
            "provider",
            "instance",
            "on-demand $/h",
            "spot $/h",
            "discount",
        ],
    )
    .with_paper_note("spot reduces cost by up to 90%; GCP pure-spot vCPU $0.009638/h");
    for p in table1_prices() {
        t.push_row(vec![
            p.provider.to_string(),
            p.instance.to_string(),
            format!("{:.3}", p.on_demand_per_hour),
            format!("{:.3}", p.spot_per_hour),
            format!("{:.0}%", p.spot_discount() * 100.0),
        ]);
    }
    // The derived economics: a spot engine core at 2 MOPS.
    t.push_row(vec![
        "(derived)".into(),
        "spot engine $/Gop".into(),
        "-".into(),
        fnum(engine_cost_per_gop(2.0, GCP_SPOT_VCPU_HOUR)),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_values() {
        let t = run();
        assert_eq!(t.cell("GCP", "on-demand $/h"), Some("0.257"));
        assert_eq!(t.cell("AWS", "spot $/h"), Some("0.049"));
        assert_eq!(t.cell("Azure", "discount"), Some("90%"));
    }
}

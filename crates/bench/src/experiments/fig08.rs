//! Figure 8 (a–d): hash-table throughput backed by disaggregated memory —
//! six systems, record sizes 8/64/256/512 B, 1–16 application threads,
//! with the bandwidth upper bound marked for the large records.

use baselines::model::{hash_probe_app_ns, throughput_mops, Comm, Testbed};
use workloads::hashtable::HashTableSpec;

use crate::report::{fnum, Table};

const THREADS: [u32; 5] = [1, 2, 4, 8, 16];

pub fn run() -> Vec<Table> {
    [8u32, 64, 256, 512]
        .iter()
        .enumerate()
        .map(|(i, &rs)| sub_figure(char::from(b'a' + i as u8), rs))
        .collect()
}

fn sub_figure(letter: char, record_size: u32) -> Table {
    let tb = Testbed::paper();
    let spec = HashTableSpec::paper(record_size);
    let app = hash_probe_app_ns(record_size);
    let remote = 1.0 - spec.local_fraction;
    let mut t = Table::new(
        &format!("Figure 8{letter}"),
        &format!(
            "Hash table MOPS, {record_size} B records, {} % remote",
            (remote * 100.0) as u32
        ),
        &["system", "1", "2", "4", "8", "16"],
    )
    .with_paper_note(match record_size {
        8 => "Cowbird within ~11% of local; 3.5x over async RDMA; sync an order of magnitude down",
        64 => "same ordering as 8 B with slightly lower absolute MOPS",
        256 => "Cowbird reaches the dashed bandwidth bound at high thread counts",
        _ => "bandwidth bound ~21 MOPS dominates every remote system at 16 threads",
    });
    for comm in Comm::figure8_series() {
        let mut row = vec![comm.label().to_string()];
        for &n in &THREADS {
            row.push(fnum(throughput_mops(
                comm,
                n,
                app,
                remote,
                record_size,
                &tb,
                0,
            )));
        }
        t.push_row(row);
    }
    // The dashed bandwidth upper bound of Fig. 8c/d.
    let mut bound = vec!["Bandwidth bound".to_string()];
    for _ in THREADS {
        bound.push(fnum(tb.net.bandwidth_cap_mops(record_size) / remote));
    }
    t.push_row(bound);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_subfigures_with_all_series() {
        let figs = run();
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.rows.len(), 7); // 6 systems + bound
        }
    }

    #[test]
    fn small_records_cowbird_tracks_local() {
        let figs = run();
        let a = &figs[0];
        let local = a.cell_f64("Local memory", "16").unwrap();
        let cowbird = a.cell_f64("Cowbird", "16").unwrap();
        assert!(cowbird / local > 0.8, "{cowbird}/{local}");
    }

    #[test]
    fn large_records_capped_at_bandwidth() {
        let figs = run();
        let d = &figs[3];
        let cowbird = d.cell_f64("Cowbird", "16").unwrap();
        let bound = d.cell_f64("Bandwidth bound", "16").unwrap();
        assert!((cowbird - bound).abs() / bound < 0.02);
        // Local memory exceeds the network bound.
        assert!(d.cell_f64("Local memory", "16").unwrap() > bound);
    }

    #[test]
    fn async_an_order_of_magnitude_over_sync() {
        let figs = run();
        for f in &figs {
            let sync = f.cell_f64("One-sided RDMA (sync)", "4").unwrap();
            let async_ = f.cell_f64("One-sided RDMA (async)", "4").unwrap();
            assert!(async_ / sync > 4.0, "{}: {async_}/{sync}", f.id);
        }
    }
}

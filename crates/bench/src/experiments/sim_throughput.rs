//! sim_throughput — how fast does the simulator itself simulate?
//!
//! Every artifact in this crate stands on the discrete-event kernel, so the
//! kernel's own throughput is a headline trajectory metric: a scheduler
//! regression silently stretches every CI run and every experiment sweep.
//! This artifact runs the standard Cowbird rig workload three ways:
//!
//! * **baseline** — the rig exactly as every other artifact runs it
//!   (observability plane compiled in, nothing enabled).
//! * **disabled** — same config, plane still off; the delta against
//!   baseline is the cost of carrying the disabled hooks (one untaken
//!   branch per event), which the ≤1% acceptance gate bounds.
//! * **instrumented** — scheduler metrics + provenance + the kernel
//!   self-profiler all on; the delta is the price of full observability,
//!   reported for operators deciding whether to fly with it enabled.
//!
//! Sub-percent comparisons on shared machines need a paired design, not
//! run-A-then-run-B. The three configurations run **interleaved in
//! virtual-time slices**: all three sims advance [`SLICE_NS`] of virtual
//! time in rotating order until every workload completes. Because the sims
//! share a seed, sweep *s* executes the *identical* event sequence in all
//! three lanes, microseconds apart — CPU frequency steps and thermal drift
//! land on a sweep's three lanes equally, and each sweep's lane-time
//! *ratio* is a paired measurement of identical work with the machine
//! state divided out. A pass's slowdown is the **median of its per-sweep
//! ratios** — one-sided interference (a preemption or steal burst hitting
//! one lane) pollutes a single sweep's ratio, and the median across ~150
//! sweeps rejects it. One bias survives pairing: heap placement. The two
//! unobserved lanes run identical code, but whichever heap region each
//! rig's allocations landed in stays put for the whole process, and a
//! lucky layout keeps one lane a steady 1–3% faster in every sweep. So
//! passes run in **ABBA role swaps** — odd passes hand the
//! first-constructed rig the disabled role — and each AB/BA pair is
//! folded with a geometric mean, cancelling the placement bias exactly if
//! it is multiplicative. The overhead gauges are medians over the
//! [`PASSES`]`/2` folded pairs; the headline events/sec is the best pass
//! (interference only ever slows a run down).
//! The instrumented run also lands the introspection surfaces this PR is
//! about: the queue-depth/dwell histograms, allocations-per-event from the
//! counting allocator (0 when the binary didn't install
//! [`telemetry::profile::TallyAlloc`]), and the event-provenance flow trace
//! written to `target/flight-recorder/sim_throughput.flow.json` for
//! `chrome://tracing`.
//!
//! Headline trajectory gauges (gated by `bench_compare`):
//! `cowbird.sim.events_per_sec` (higher is better) and
//! `cowbird.sim.allocs_per_event` (lower is better).

use simnet::introspect::EventClass;
use simnet::sim::{NodeId, Sim};
use simnet::time::Instant;
use telemetry::{Component, Telemetry};

use crate::harness::{build_cowbird_rig, CowbirdClientNode, CowbirdRig};
use crate::report::{fnum, Table};

/// Ops the client completes per run (~78k scheduler events end to end —
/// tens of milliseconds of timed region per configuration).
const TARGET_OPS: u64 = 10_000;
/// Virtual-time slice width of the interleaved measurement: ~128 rotation
/// sweeps over the run, a few hundred µs of CPU per lane-slice — fine
/// enough that frequency steps straddle all three configurations.
const SLICE_NS: u64 = 25_000;
/// Interleaved passes, run as ABBA role-swapped pairs (must stay even);
/// the overhead gauges take the median of the pair-folded slowdowns.
const PASSES: usize = 6;
/// Virtual-time cap per pass (the workload finishes far earlier; hitting
/// the cap means a lane stalled and the completion assert names it).
const CAP_NS: u64 = 2_000_000_000;
/// The kernel's node id in the attribution report (no rig node uses it).
const SIM_NODE: u16 = 90;

fn rig_cfg() -> CowbirdRig {
    CowbirdRig {
        seed: 42,
        target_ops: TARGET_OPS,
        inflight: 16,
        engine_batch: 8,
        ..Default::default()
    }
}

/// One measured configuration: a rig sim plus the allocations charged to
/// it across its interleaved slices (per-slice times live in the pass's
/// sweep table).
struct Lane {
    sim: Sim,
    client_id: NodeId,
    allocs: u64,
}

fn lane(hub: Option<&Telemetry>) -> Lane {
    let (mut sim, client_id, _engine_id) = build_cowbird_rig(rig_cfg());
    if let Some(hub) = hub {
        sim.enable_scheduler_metrics();
        // A 16k ring: the flow trace carries the most recent ~16k events'
        // arrows (a full run would be tens of MB of JSON for no extra
        // diagnostic value — the cascade shape repeats every op).
        sim.enable_provenance(1 << 14);
        sim.attach_self_profiler(hub.profiler(SIM_NODE, "sim-kernel", Component::Sim));
    }
    Lane {
        sim,
        client_id,
        allocs: 0,
    }
}

fn lane_done(l: &Lane) -> bool {
    let client: &CowbirdClientNode = l.sim.node_ref(l.client_id);
    client.completed() >= TARGET_OPS
}

/// One interleaved pass: [baseline, disabled, instrumented] advance in
/// rotating virtual-time slices until every workload completes. Returns
/// the lanes plus the per-sweep slice times `[base, disabled,
/// instrumented]` in nanoseconds. `swap` hands the baseline role to the
/// second-constructed rig (the ABBA leg of the placement-bias fold).
fn interleaved_pass(hub: &Telemetry, swap: bool) -> ([Lane; 3], Vec<[u64; 3]>) {
    let a = lane(None);
    let b = lane(None);
    let inst = lane(Some(hub));
    let mut lanes = if swap { [b, a, inst] } else { [a, b, inst] };
    let mut sweeps: Vec<[u64; 3]> = Vec::with_capacity(256);
    let mut deadline_ns = SLICE_NS;
    let mut sweep = 0usize;
    while deadline_ns <= CAP_NS && !lanes.iter().all(lane_done) {
        let mut times = [0u64; 3];
        for j in 0..lanes.len() {
            let i = (j + sweep) % lanes.len();
            let a0 = telemetry::profile::allocs_now();
            let t0 = std::time::Instant::now();
            lanes[i].sim.run_until(Some(Instant(deadline_ns)));
            times[i] = t0.elapsed().as_nanos() as u64;
            lanes[i].allocs += telemetry::profile::allocs_now() - a0;
        }
        sweeps.push(times);
        sweep += 1;
        deadline_ns += SLICE_NS;
    }
    for (i, l) in lanes.iter().enumerate() {
        let client: &CowbirdClientNode = l.sim.node_ref(l.client_id);
        assert_eq!(
            client.completed(),
            TARGET_OPS,
            "sim_throughput lane {i}: the workload must complete; this artifact times it, not truncates it"
        );
    }
    (lanes, sweeps)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    (v[(n - 1) / 2] + v[n / 2]) / 2.0
}

/// The pass's speed ratios `[base/disabled, base/instrumented]`, each the
/// **median of the per-sweep ratios**. Every sweep is a paired
/// measurement: the lanes executed the identical event slice back-to-back,
/// so a frequency step or thermal drift divides out of that sweep's ratio,
/// and a one-sided interference burst (preemption, steal) lands in a
/// single sweep's ratio, where the median across ~150 sweeps rejects it.
/// A ratio > 1 means the comparison lane was slower than baseline.
fn sweep_ratio_medians(sweeps: &[[u64; 3]]) -> [f64; 2] {
    let ratio = |i: usize| {
        median(
            sweeps
                .iter()
                .map(|s| s[i].max(1) as f64 / s[0].max(1) as f64)
                .collect(),
        )
    };
    [ratio(1), ratio(2)]
}

pub fn run() -> Vec<Table> {
    let reg = telemetry::metrics::global();

    // Baseline and disabled are the same code path on purpose — the
    // comparison *verifies* that carrying the disabled observability plane
    // costs nothing measurable. See the module docs for why the lanes are
    // slice-interleaved and outlier-filtered; the per-pass kept-sum ratios
    // are medianed so one interfered pass cannot drag the gauges.
    let mut base_eps = 0.0f64;
    let mut disabled_eps = 0.0f64;
    let mut inst_eps = 0.0f64;
    let mut base_events = 0;
    let mut dis_ratios = Vec::with_capacity(PASSES);
    let mut inst_ratios = Vec::with_capacity(PASSES);
    let mut inst_allocs = 0;
    let mut inst_sim = None;
    for pass in 0..PASSES {
        let hub = Telemetry::new(1 << 12);
        let ([base, disabled, inst], sweeps) = interleaved_pass(&hub, pass % 2 == 1);
        let events = base.sim.events_processed();
        assert_eq!(events, disabled.sim.events_processed());
        assert_eq!(events, inst.sim.events_processed());
        // Headline rates come from the full (unfiltered) wall time — real
        // throughput, interference included; only the overhead *ratios*
        // use the kept-sweep sums, which compare identical event work.
        let total = |i: usize| sweeps.iter().map(|s| s[i]).sum::<u64>().max(1);
        let be = events as f64 / (total(0) as f64 / 1e9);
        let de = events as f64 / (total(1) as f64 / 1e9);
        let ie = events as f64 / (total(2) as f64 / 1e9);
        let [dis_slowdown, inst_slowdown] = sweep_ratio_medians(&sweeps);
        if std::env::var_os("COWBIRD_SIM_TPUT_DEBUG").is_some() {
            eprintln!(
                "[sim_throughput pass {pass}: base {be:.0} disabled {de:.0} \
                 instrumented {ie:.0} sweeps {} slowdown {dis_slowdown:.4}]",
                sweeps.len()
            );
        }
        base_events = events;
        base_eps = base_eps.max(be);
        disabled_eps = disabled_eps.max(de);
        inst_eps = inst_eps.max(ie);
        dis_ratios.push(dis_slowdown);
        inst_ratios.push(inst_slowdown);
        inst_allocs = inst.allocs;
        inst_sim = Some(inst.sim);
    }
    // Fold each AB/BA pass pair with a geometric mean (cancels the heap
    // placement bias — see the module docs), then take the median pair.
    let fold = |v: &[f64]| median(v.chunks(2).map(|c| (c[0] * c[1]).sqrt()).collect());
    let disabled_overhead = fold(&dis_ratios) - 1.0;
    let enabled_overhead = fold(&inst_ratios) - 1.0;
    let allocs_per_event = inst_allocs as f64 / base_events.max(1) as f64;
    let inst_sim = inst_sim.expect("at least one pass ran");

    let m = inst_sim.scheduler_metrics();
    let depth = m.queue_depth();
    reg.gauge_set("cowbird.sim.events_per_sec", &[], disabled_eps);
    reg.gauge_set("cowbird.sim.allocs_per_event", &[], allocs_per_event);
    reg.gauge_set("cowbird.sim.disabled_overhead_frac", &[], disabled_overhead);
    reg.gauge_set("cowbird.sim.enabled_overhead_frac", &[], enabled_overhead);
    reg.counter_add("cowbird.sim.events_processed", &[], base_events);
    reg.hist_merge("cowbird.sim.queue_depth_len", &[], &depth);
    for class in EventClass::ALL {
        let labels = [("class", class.name())];
        reg.counter_add("cowbird.sim.events_fired", &labels, m.fired(class));
        reg.counter_add("cowbird.sim.events_cancelled", &labels, m.cancelled(class));
        reg.hist_merge(
            "cowbird.sim.dwell_virtual_ns",
            &labels,
            &m.dwell_virtual(class),
        );
        reg.hist_merge("cowbird.sim.dwell_wall_ns", &labels, &m.dwell_wall(class));
    }

    // The provenance cascade as a Chrome-trace flow graph, next to the
    // flight dumps CI already collects.
    let spans = inst_sim.flow_spans();
    let trace = telemetry::flow_trace_json(
        &spans,
        &[
            (0, "compute".to_string()),
            (1, "engine".to_string()),
            (2, "pool".to_string()),
        ],
    );
    let dir = telemetry::FlightDump::default_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("sim_throughput.flow.json");
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("[sim_throughput: flow trace write failed: {e}]");
        } else {
            eprintln!("[sim_throughput: flow trace written to {}]", path.display());
        }
    }

    let mut t = Table::new(
        "sim_throughput",
        "simulator self-observability: events/sec, allocs/event, scheduler introspection",
        &[
            "config",
            "events",
            "events/sec",
            "allocs/event",
            "queue p99",
            "overhead",
        ],
    )
    .with_paper_note(
        "beyond the paper: the DES kernel observing itself; trajectory-gated so \
         scheduler regressions surface in CI",
    );
    t.push_row(vec![
        "baseline".into(),
        base_events.to_string(),
        fnum(base_eps),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t.push_row(vec![
        "disabled".into(),
        base_events.to_string(),
        fnum(disabled_eps),
        "-".into(),
        "-".into(),
        format!("{:+.2}%", disabled_overhead * 100.0),
    ]);
    t.push_row(vec![
        "instrumented".into(),
        base_events.to_string(),
        fnum(inst_eps),
        fnum(allocs_per_event),
        depth.p99().to_string(),
        format!("{:+.2}%", enabled_overhead * 100.0),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Phase;

    #[test]
    fn artifact_lands_headline_metrics_and_flow_trace() {
        let reg = telemetry::metrics::global();
        let before = reg.snapshot();
        let t = &run()[0];
        let diff = reg.snapshot().diff(&before);

        // Headline trajectory gauges exist and are sane.
        let eps = diff.gauges["cowbird.sim.events_per_sec"];
        assert!(eps > 0.0, "events/sec must be positive, got {eps}");
        let ape = diff.gauges["cowbird.sim.allocs_per_event"];
        assert!(ape >= 0.0);
        // The bench-lib test binary installs the counting allocator, so the
        // instrumented run must have observed real allocation traffic.
        assert!(ape > 0.0, "counting allocator installed but saw nothing");

        // The disabled plane is the baseline code path plus one untaken
        // branch per hook; the measured overhead is noise. The release
        // bench run records the ≤1% evidence in the trajectory gauge; this
        // debug binary shares the machine with parallel test threads, so
        // the inline bound is only a gross-regression backstop.
        let overhead = diff.gauges["cowbird.sim.disabled_overhead_frac"];
        assert!(
            overhead.is_finite() && overhead.abs() < 0.25,
            "disabled-instrumentation overhead {overhead:+.3} out of noise range"
        );

        // Scheduler introspection surfaced per class.
        let depth = &diff.hists["cowbird.sim.queue_depth_len"];
        assert!(depth.count > 0);
        assert!(
            diff.counters["cowbird.sim.events_fired{class=deliver}"] > 0,
            "rig traffic must fire deliveries"
        );

        // The flow trace is on disk and is valid JSON with flow arrows.
        let path = telemetry::FlightDump::default_dir().join("sim_throughput.flow.json");
        let trace = std::fs::read_to_string(&path).expect("flow trace written");
        telemetry::json::validate(&trace).expect("flow trace is valid JSON");
        assert!(trace.contains("\"ph\":\"s\""), "flow arrows present");

        // Table shape: three configs, instrumented last.
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[2][0], "instrumented");
    }

    #[test]
    fn self_profiler_attributes_scheduler_phases_in_the_hub_report() {
        let hub = Telemetry::new(1 << 12);
        let mut l = lane(Some(&hub));
        l.sim.run_until(Some(Instant(CAP_NS)));
        assert!(lane_done(&l), "instrumented lane must finish its workload");
        let events = l.sim.events_processed();
        let dump = hub.attribution();
        let text = dump.to_text();
        assert!(text.contains("sched_pop"), "attribution:\n{text}");
        assert!(text.contains("sched_dispatch"), "attribution:\n{text}");
        let acct = hub
            .profiler(SIM_NODE, "sim-kernel", Component::Sim)
            .account()
            .expect("kernel profiler registered");
        // Every processed event was popped under a SchedPop scope (the rig
        // may pop a few extra times: the final empty pop, deadline
        // push-backs, and the stop-flag exit vary the exact count).
        assert!(acct.phase_count(Phase::SchedPop) >= events);
        // The test binary's counting allocator feeds the per-phase
        // attribution: dispatching rig handlers allocates (packets, verbs).
        let sched_allocs: u64 = [Phase::SchedPop, Phase::SchedDispatch, Phase::SchedDevice]
            .iter()
            .map(|&p| acct.phase_allocs(p))
            .sum();
        assert!(sched_allocs > 0, "no allocations attributed to the kernel");
    }
}

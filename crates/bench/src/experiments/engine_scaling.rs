//! Engine scale-out: throughput vs channels per core, 1–4 shards.
//!
//! The paper provisions one client channel per hardware thread but expects
//! the offload side to stay *cheap*: a couple of spot cores (or one switch
//! pipeline) drive the whole machine (§6). This ablation runs the real
//! [`EngineGroup`] — OS threads over the emulated RDMA fabric — and checks
//! the property that makes that provisioning work: the **modeled per-op
//! engine cost does not grow with channel fan-in**. A single worker driving
//! eight channels must pay, per operation, what it pays driving one.
//!
//! Per-op cost is *virtual*: every fabric verb the engine actually issued
//! (work-finding probes, metadata fetches, pool reads/writes, completion
//! and bookkeeping writes — straight off [`EngineStats`]) is priced at the
//! Figure-2 cost model's full RDMA post+poll. Under the closed-loop
//! workload here (one outstanding op per channel) those counters are
//! workload-determined, not scheduler-determined, so the headline assert is
//! CI-stable. Idle probes are deliberately *excluded* from the per-op
//! figure — an idle probe is a rate (per second of idleness), not a cost
//! attributable to an op — and reported as their own column instead.
//!
//! The second table scales shards at fixed fan-in (8 channels on 1, 2, 4
//! workers): round-robin placement plus hot-channel donation keep the
//! per-op cost placement-invariant, and every shard's recycled-buffer
//! arena holds the §5.3-analogue reuse floor.
//!
//! The flagship configuration (1 worker × 8 channels) also writes a
//! shard-attribution side report — per-shard probe/execute wall
//! nanoseconds, idle-ladder counters, and arena recycling — as
//! `engine_scaling_shards.metrics.json`, which CI uploads next to the
//! artifact's own metrics diff.

use std::time::Instant;

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::{EngineConfig, EngineGroup, EngineStats, GroupConfig, SpotWiring};
use rdma::cost::CostModel;
use rdma::emu::EmuFabric;
use rdma::mem::Region;
use telemetry::MetricsRegistry;

use crate::report::{fnum, write_metrics_json, Table};

/// Closed-loop ops driven per channel in every configuration.
const OPS_PER_CHANNEL: u64 = 400;
/// 64-byte records pre-filled in the pool for the workload to read.
const SLOTS: u64 = 1024;
/// Acceptance bound: per-op modeled cost at 8 channels/core (and at 4
/// shards) relative to the 1-channel / 1-shard case.
pub const COST_TOLERANCE: f64 = 0.10;
/// Acceptance bound: steady-state recycled-buffer reuse.
pub const ARENA_HIT_FLOOR: f64 = 0.99;

struct ScaleRun {
    kops: f64,
    per_op_virtual_ns: f64,
    idle_probes_per_op: f64,
    telem_exports_per_op: f64,
    arena_hit_rate: f64,
    migrations: u64,
    /// Per-shard gauges (`cowbird.engine.shard.*` / `.arena.*`) at the end
    /// of the run, for the side report.
    shard_metrics: telemetry::MetricsSnapshot,
}

/// Spin up a group of `workers` shards driving `channels` channels on the
/// emulated fabric, run the closed-loop read workload to completion, and
/// fold the retired channels' statistics into the scale metrics.
fn drive(workers: usize, channels: usize) -> ScaleRun {
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let pool = fabric.add_nic();
    let pool_mem = Region::new(1 << 20);
    for slot in 0..SLOTS {
        pool_mem.write(slot * 64, &slot.to_le_bytes()).unwrap();
    }
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let group = EngineGroup::spawn(GroupConfig::with_workers(workers));
    let mut chans: Vec<Channel> = Vec::new();
    for id in 0..channels {
        let mut ch = Channel::new(id as u16, layout, regions.clone());
        ch.set_doorbell(group.doorbell());
        let channel_rkey = compute.register(ch.region().clone());
        let engine = fabric.add_nic();
        let (c_qpn, _) = fabric.connect(&engine, &compute);
        let (p_qpn, _) = fabric.connect(&engine, &pool);
        group.add_channel(
            SpotWiring {
                nic: engine,
                compute_qpn: c_qpn,
                pool_qpn: p_qpn,
                channel_rkey,
            },
            EngineConfig::spot(layout, regions.clone(), 16).with_channel_id(id as u16),
        );
        chans.push(ch);
    }

    // Closed loop, one outstanding op per channel: every op is discovered
    // by exactly one probe and flushed in its own batch, so the per-op verb
    // counters cannot depend on sweep timing.
    let ops = OPS_PER_CHANNEL * channels as u64;
    let t0 = Instant::now();
    for k in 0..OPS_PER_CHANNEL {
        let mut posted = Vec::with_capacity(channels);
        for (id, ch) in chans.iter_mut().enumerate() {
            let slot = (id as u64 * 127 + k * 31) % SLOTS;
            posted.push((slot, ch.async_read(1, slot * 64, 8).unwrap()));
        }
        for (id, (slot, h)) in posted.iter().enumerate() {
            assert!(
                chans[id].wait(h.id, 30_000_000_000),
                "round {k} on channel {id} must complete"
            );
            assert_eq!(chans[id].take_response(h).unwrap(), slot.to_le_bytes());
        }
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);

    let snaps = group.shard_snapshots();
    let (hits, misses) = snaps.iter().fold((0u64, 0u64), |(h, m), s| {
        (h + s.arena.hits, m + s.arena.misses)
    });
    let arena_hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    let migrations = snaps.iter().map(|s| s.migrations_in).sum();
    let shard_reg = MetricsRegistry::new();
    group.export_metrics(&shard_reg);
    let shard_metrics = shard_reg.snapshot();

    let finished = group.stop();
    assert_eq!(finished.len(), channels, "every channel retires on stop");
    let stats = finished.iter().fold(EngineStats::default(), |mut acc, f| {
        acc.probes_sent += f.stats.probes_sent;
        acc.probes_found_work += f.stats.probes_found_work;
        acc.meta_fetches += f.stats.meta_fetches;
        acc.pool_reads += f.stats.pool_reads;
        acc.pool_writes += f.stats.pool_writes;
        acc.compute_writes += f.stats.compute_writes;
        acc.telem_exports += f.stats.telem_exports;
        acc
    });

    // Engine-side modeled cost: every verb the engine issued on behalf of
    // completed work, priced at a full RDMA post+poll (the engine is the
    // side that *pays* the Figure-2 verbs so the client doesn't).
    // Telemetry exports ride the compute-write counter but are a *cadence*
    // (one per N probes issued), not per-op work — like idle probes they are
    // subtracted from the per-op figure and reported as their own column.
    let m = CostModel::paper_defaults();
    let verb_ns = m.rdma_total().nanos() as f64;
    let work_verbs = stats.probes_found_work
        + stats.meta_fetches
        + stats.pool_reads
        + stats.pool_writes
        + (stats.compute_writes - stats.telem_exports);
    let per_op_virtual_ns = work_verbs as f64 * verb_ns / ops as f64;
    let idle_probes_per_op = (stats.probes_sent - stats.probes_found_work) as f64 / ops as f64;
    let telem_exports_per_op = stats.telem_exports as f64 / ops as f64;

    let reg = telemetry::metrics::global();
    let w = workers.to_string();
    let c = channels.to_string();
    let labels: &[(&str, &str)] = &[("workers", w.as_str()), ("channels", c.as_str())];
    reg.gauge_set(
        "cowbird.engine.scaling.per_op_virtual_ns",
        labels,
        per_op_virtual_ns,
    );
    reg.gauge_set(
        "cowbird.engine.scaling.arena_hit_rate",
        labels,
        arena_hit_rate,
    );

    ScaleRun {
        kops: ops as f64 / elapsed / 1e3,
        per_op_virtual_ns,
        idle_probes_per_op,
        telem_exports_per_op,
        arena_hit_rate,
        migrations,
        shard_metrics,
    }
}

pub fn run() -> Vec<Table> {
    vec![channels_per_core(), shard_scaleout()]
}

/// One worker, 1→8 channels: fan-in must be free per op.
fn channels_per_core() -> Table {
    let mut t = Table::new(
        "Engine scaling 1",
        "one worker: modeled per-op engine cost vs channels per core",
        &[
            "channels",
            "Kops",
            "per-op virtual ns",
            "idle probes / op",
            "telem exports / op",
            "arena hit rate",
        ],
    )
    .with_paper_note(
        "a couple of spot cores drive the whole machine (§6): per-op engine cost must not grow with channel fan-in",
    );
    for channels in [1usize, 2, 4, 8] {
        let r = drive(1, channels);
        if channels == 8 {
            match write_metrics_json("engine_scaling_shards", &r.shard_metrics) {
                Ok(path) => eprintln!("[engine_scaling: shard report at {}]", path.display()),
                Err(e) => eprintln!("[engine_scaling: shard report failed: {e}]"),
            }
        }
        t.push_row(vec![
            channels.to_string(),
            fnum(r.kops),
            fnum(r.per_op_virtual_ns),
            fnum(r.idle_probes_per_op),
            fnum(r.telem_exports_per_op),
            fnum(r.arena_hit_rate),
        ]);
    }
    t
}

/// Eight channels on 1→4 shards: scale-out must not change per-op cost,
/// and every shard's arena must keep recycling.
fn shard_scaleout() -> Table {
    let mut t = Table::new(
        "Engine scaling 2",
        "eight channels: shard scale-out, donation rebalancing enabled",
        &[
            "workers",
            "Kops",
            "per-op virtual ns",
            "migrations",
            "arena hit rate",
        ],
    )
    .with_paper_note(
        "extension: sharded polling group; modeled per-op cost is placement-invariant across shard counts",
    );
    for workers in [1usize, 2, 4] {
        let r = drive(workers, 8);
        t.push_row(vec![
            workers.to_string(),
            fnum(r.kops),
            fnum(r.per_op_virtual_ns),
            r.migrations.to_string(),
            fnum(r.arena_hit_rate),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_channels_per_core_cost_within_tolerance() {
        let t = channels_per_core();
        let one = t.cell_f64("1", "per-op virtual ns").unwrap();
        // Regression guard for the fan-in cliff: before the telemetry
        // cadence fix and per-channel arena sizing, the 4- and 8-channel
        // rows blew up to ~20x cost and ~0.5 arena reuse.
        for channels in ["4", "8"] {
            let cost = t.cell_f64(channels, "per-op virtual ns").unwrap();
            let rel = (cost - one).abs() / one;
            assert!(
                rel <= COST_TOLERANCE,
                "per-op cost at {channels} channels/core ({cost} ns) deviates \
                 from the 1-channel case ({one} ns) by {:.1}% (tolerance {:.0}%)",
                rel * 100.0,
                COST_TOLERANCE * 100.0,
            );
            let hit = t.cell_f64(channels, "arena hit rate").unwrap();
            assert!(
                hit >= ARENA_HIT_FLOOR,
                "steady-state arena reuse {hit} at {channels} channels below \
                 the {ARENA_HIT_FLOOR} floor"
            );
        }
    }

    #[test]
    fn shard_fanout_keeps_cost_and_recycling_flat() {
        let t = shard_scaleout();
        let one = t.cell_f64("1", "per-op virtual ns").unwrap();
        let four = t.cell_f64("4", "per-op virtual ns").unwrap();
        let rel = (four - one).abs() / one;
        assert!(
            rel <= COST_TOLERANCE,
            "per-op cost at 4 shards ({four} ns) deviates from 1 shard \
             ({one} ns) by {:.1}%",
            rel * 100.0,
        );
        for row in &t.rows {
            let hit: f64 = row[4].parse().unwrap();
            assert!(
                hit >= ARENA_HIT_FLOOR,
                "shard count {} arena reuse {hit} below floor",
                row[0]
            );
        }
    }
}

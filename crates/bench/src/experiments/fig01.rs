//! Figure 1: hash-index probe of 256-byte elements in remote memory,
//! normalized to local-memory performance, for 1/2/4 application threads.

use baselines::model::{hash_probe_app_ns, throughput_mops, Comm, Testbed};

use crate::report::{fnum, Table};

pub fn run() -> Table {
    let tb = Testbed::paper();
    let record = 256u32;
    let app = hash_probe_app_ns(record);
    let remote = 0.95;
    let mut t = Table::new(
        "Figure 1",
        "Hash-index probe throughput, 256 B records, normalized to local memory",
        &["system", "1 thread", "2 threads", "4 threads"],
    )
    .with_paper_note(
        "sync RDMA ~0.05x, async ~0.3x, Cowbird-no-batch below Cowbird, Cowbird ~1.0x of local",
    );
    let threads = [1u32, 2, 4];
    let locals: Vec<f64> = threads
        .iter()
        .map(|&n| throughput_mops(Comm::LocalMemory, n, app, remote, record, &tb, 0))
        .collect();
    for comm in Comm::figure8_series() {
        let mut row = vec![comm.label().to_string()];
        for (i, &n) in threads.iter().enumerate() {
            let mops = throughput_mops(comm, n, app, remote, record, &tb, 0);
            row.push(fnum(mops / locals[i]));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_ordering() {
        let t = run();
        // Local memory is 1.0 by construction.
        for col in ["1 thread", "2 threads", "4 threads"] {
            assert_eq!(t.cell_f64("Local memory", col), Some(1.0));
            let sync = t.cell_f64("One-sided RDMA (sync)", col).unwrap();
            let async_ = t.cell_f64("One-sided RDMA (async)", col).unwrap();
            let cowbird = t.cell_f64("Cowbird", col).unwrap();
            assert!(sync < 0.1, "sync {sync}");
            assert!(async_ > sync && async_ < cowbird);
            assert!(cowbird > 0.75 && cowbird <= 1.0, "cowbird {cowbird}");
        }
    }
}

//! Figure 10 (a–b): the communication ratio — "time spent in the
//! communication library over the total execution time of the application"
//! — for FASTER with each remote-memory backend.

use baselines::model::{communication_ratio, Comm, Testbed};
use workloads::ycsb::YcsbSpec;

use crate::experiments::fig09::{faster_app_ns, storage_fraction, THREADS};
use crate::report::{fnum, Table};

pub fn run() -> Vec<Table> {
    vec![
        sub_figure('a', YcsbSpec::paper_small()),
        sub_figure('b', YcsbSpec::paper_large()),
    ]
}

fn sub_figure(letter: char, spec: YcsbSpec) -> Table {
    let tb = Testbed::paper();
    let sf = storage_fraction(&spec);
    let mut t = Table::new(
        &format!("Figure 10{letter}"),
        &format!("Communication ratio, {} B values", spec.value_size),
        &["backend", "1", "2", "4", "8", "16"],
    )
    .with_paper_note("sync RDMA spends >80% of time in communication; Cowbird consistently <20%");
    let series = [
        ("One-sided RDMA (sync)", Comm::OneSidedSync),
        ("One-sided RDMA (async)", Comm::OneSidedAsync { batch: 100 }),
        ("Cowbird-P4", Comm::CowbirdNoBatch),
        ("Cowbird-Spot", Comm::Cowbird),
    ];
    for (label, comm) in series {
        let mut row = vec![label.to_string()];
        for &n in &THREADS {
            row.push(fnum(communication_ratio(comm, faster_app_ns(n), sf, &tb)));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_thresholds() {
        for f in run() {
            for col in ["1", "8", "16"] {
                let sync = f.cell_f64("One-sided RDMA (sync)", col).unwrap();
                let spot = f.cell_f64("Cowbird-Spot", col).unwrap();
                let p4 = f.cell_f64("Cowbird-P4", col).unwrap();
                assert!(sync > 0.8, "{}: sync {sync}", f.id);
                assert!(spot < 0.2, "{}: spot {spot}", f.id);
                assert!(p4 < 0.2, "{}: p4 {p4}", f.id);
                let async_ = f.cell_f64("One-sided RDMA (async)", col).unwrap();
                assert!(async_ > spot && async_ < sync);
            }
        }
    }
}

//! Ablations of Cowbird's design choices, run packet-level:
//!
//! * **Batch-size sweep** — how the engine's response batching (paper §6)
//!   trades compute-NIC message count against latency;
//! * **Probe-interval sweep** — the §5.2 trade-off between probe overhead
//!   and worst-case completion latency;
//! * **Loss sweep** — Go-Back-N recovery (§5.3) keeps completing under
//!   injected packet loss, at a tail-latency cost;
//! * **Failover** — a scheduled fault kills the primary engine mid-workload
//!   and a fenced standby adopts the channel from the client-side
//!   bookkeeping block; throughput dips for exactly the detection window and
//!   every request completes exactly once.

use cowbird_engine::sim::EngineNode;
use simnet::time::{Duration, Instant};

use crate::harness::{
    build_cowbird_failover_rig, build_cowbird_rig, CowbirdClientNode, CowbirdRig,
};
use crate::report::{fnum, Table};

pub fn run() -> Vec<Table> {
    vec![
        batch_sweep(),
        probe_sweep(),
        loss_sweep(),
        adaptive_probe(),
        tcp_contention_measured(),
        failover(),
    ]
}

/// Engine failover, measured on the packet-level rig: the primary engine
/// node is crashed by a fault script at a fixed virtual time; a standby
/// activates after a configurable detection delay, reads the red
/// bookkeeping block out of client memory, bumps the fencing epoch, and
/// resumes from the committed floor. Recovery time is the virtual-time gap
/// between the crash and the first post-takeover completion.
fn failover() -> Table {
    let mut t = Table::new(
        "Ablation 6",
        "Engine failover: primary crash at 50 us, fenced standby takeover",
        &[
            "takeover us",
            "completed",
            "pre-crash Mops",
            "post-recovery Mops",
            "recovery us",
            "replay-skipped",
        ],
    )
    .with_paper_note(
        "extension: Cowbird-Spot engines run on preemptible VMs (§6); a standby adopts the channel from the client-side bookkeeping block, exactly once",
    );
    let crash = Duration::from_micros(50);
    for takeover_us in [100u64, 500, 2000] {
        let ops = 300u64;
        let takeover = Duration::from_micros(takeover_us);
        let (mut sim, cid, _eid, sid) = build_cowbird_failover_rig(
            CowbirdRig {
                seed: 26,
                record_size: 64,
                inflight: 8,
                target_ops: ops,
                engine_batch: 8,
                ..Default::default()
            },
            crash,
            takeover,
        );
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        // Exactly once, or the row is meaningless: everything issued
        // completed, and the progress counter matches the issue count (a
        // duplicate completion would overshoot it, a lost one would stall
        // it). Read payloads were verified against the pool content inline.
        assert_eq!(client.completed(), ops, "lost completions");
        assert_eq!(client.issued(), ops);
        assert_eq!(
            client.channel().progress(cowbird::reqid::OpType::Read),
            ops,
            "sequence numbers lost or duplicated across takeover"
        );
        let crash_at = Instant(crash.nanos());
        let activate_at = Instant((crash + takeover).nanos());
        let times = &client.completion_times;
        let pre = times.iter().filter(|&&at| at < crash_at).count();
        let idx = times
            .iter()
            .position(|&at| at >= activate_at)
            .expect("no post-takeover completion");
        let recovery_us = times[idx].since(crash_at).nanos() as f64 / 1e3;
        let done = client.done_at.expect("workload finished");
        let post_span = done.since(times[idx]).secs_f64().max(1e-9);
        let standby: &EngineNode = sim.node_ref(sid);
        t.push_row(vec![
            takeover_us.to_string(),
            client.completed().to_string(),
            fnum(pre as f64 / crash.secs_f64() / 1e6),
            fnum((times.len() - idx) as f64 / post_span / 1e6),
            fnum(recovery_us),
            standby.core(0).stats.replay_skipped.to_string(),
        ]);
    }
    t
}

/// Paper §5.2's ramp-up option, measured: an idle period followed by a
/// burst. Adaptive probing cuts idle probe traffic while bounding the
/// latency penalty of the first op after idleness.
fn adaptive_probe() -> Table {
    let mut t = Table::new(
        "Ablation 4",
        "Adaptive probe ramping: idle probe traffic vs first-op latency",
        &[
            "policy",
            "probes sent",
            "first-op latency us",
            "all ops p50 us",
        ],
    )
    .with_paper_note(
        "\"start at a low baseline rate and ramp up only when activity is detected\" (§5.2)",
    );
    for adaptive in [false, true] {
        let ops = 50u64;
        let (mut sim, cid, eid) = {
            use crate::harness::{build_cowbird_rig_with, CowbirdRig};
            build_cowbird_rig_with(
                CowbirdRig {
                    seed: 24,
                    record_size: 64,
                    inflight: 1,
                    target_ops: ops,
                    engine_batch: 4,
                    probe_interval: Duration::from_micros(2),
                    ..Default::default()
                },
                // The client stays idle for the first 500 us of the run.
                Duration::from_micros(500),
                adaptive.then_some((Duration::from_micros(64), 8)),
            )
        };
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        assert_eq!(client.completed(), ops);
        let engine: &EngineNode = sim.node_ref(eid);
        t.push_row(vec![
            if adaptive {
                "adaptive (2us..64us)"
            } else {
                "fixed (2us)"
            }
            .to_string(),
            engine.core(0).stats.probes_sent.to_string(),
            fnum(client.first_latency_ns() as f64 / 1e3),
            fnum(client.latency.median() as f64 / 1e3),
        ]);
    }
    t
}

/// The Fig. 14 mechanism, measured on the simulator: a greedy TCP flow at
/// low priority whose host's egress link also carries the engine's
/// high-priority small packets (bookkeeping writes + ACKs), at the rates
/// the two engine variants generate at 8 FASTER threads.
fn tcp_contention_measured() -> Table {
    use simnet::sim::{NodeId, Sim};
    use simnet::tcp::{TcpFlow, TcpSink};

    let run = |pkts_per_sec: f64| -> f64 {
        let mut sim = Sim::new(25);
        let flow_id = NodeId(0);
        let sink_id = NodeId(1);
        let mut flow = TcpFlow::new(sink_id, 6);
        if pkts_per_sec > 0.0 {
            flow = flow.with_interferer(
                Duration::from_secs_f64(1.0 / pkts_per_sec),
                110, // a bookkeeping write's wire size
                0,   // RDMA configured above user traffic (paper worst case)
            );
        }
        sim.add_node(Box::new(flow));
        sim.add_node(Box::new(TcpSink::new(6)));
        sim.connect(
            flow_id,
            sink_id,
            simnet::link::LinkParams::new(25e9, Duration::from_micros(5)),
        );
        sim.run_for(Duration::from_millis(30));
        let flow: &TcpFlow = sim.node_ref(flow_id);
        flow.goodput_gbps(Instant(Duration::from_millis(30).nanos()))
    };

    let mut t = Table::new(
        "Ablation 5",
        "Measured TCP goodput vs co-located high-priority small-packet rate (25 Gbps link)",
        &["hp pkts/s", "engine regime", "TCP goodput Gbps"],
    )
    .with_paper_note(
        "the Fig. 14 mechanism measured packet-level: per-request bookkeeping displaces TCP, batched bookkeeping does not",
    );
    for (rate, label) in [
        (0.0, "w/o Cowbird"),
        (0.9e6, "Cowbird-Spot-like (batched bookkeeping)"),
        (12.0e6, "Cowbird-P4-like (per-request bookkeeping)"),
    ] {
        t.push_row(vec![
            format!("{:.1e}", rate),
            label.to_string(),
            fnum(run(rate)),
        ]);
    }
    t
}

fn batch_sweep() -> Table {
    let mut t = Table::new(
        "Ablation 1",
        "Engine response batching: compute-bound messages per op and p50 latency",
        &["batch size", "compute writes / op", "p50 us"],
    )
    .with_paper_note("batching reduces load on the compute node and its NIC (§6)");
    for batch in [1usize, 4, 16, 64] {
        let ops = 400u64;
        let (mut sim, cid, eid) = build_cowbird_rig(CowbirdRig {
            seed: 21,
            record_size: 64,
            inflight: 64,
            target_ops: ops,
            engine_batch: batch,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(100).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        assert_eq!(client.completed(), ops);
        let p50 = client.latency.median() as f64 / 1e3;
        let engine: &EngineNode = sim.node_ref(eid);
        let writes = engine.core(0).stats.compute_writes as f64 / ops as f64;
        t.push_row(vec![batch.to_string(), fnum(writes), fnum(p50)]);
    }
    t
}

fn probe_sweep() -> Table {
    let mut t = Table::new(
        "Ablation 2",
        "Probe interval vs closed-loop latency and probe overhead",
        &["probe us", "p50 us", "probes sent", "probes w/ work"],
    )
    .with_paper_note(
        "1 probe per 2us in the FASTER prototype; rate bounds worst-case latency (§5.2)",
    );
    for probe_us in [1u64, 2, 8, 32] {
        let ops = 200u64;
        let (mut sim, cid, eid) = build_cowbird_rig(CowbirdRig {
            seed: 22,
            record_size: 64,
            inflight: 1,
            target_ops: ops,
            engine_batch: 1,
            probe_interval: Duration::from_micros(probe_us),
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(200).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        assert_eq!(client.completed(), ops);
        let engine: &EngineNode = sim.node_ref(eid);
        let stats = engine.core(0).stats;
        t.push_row(vec![
            probe_us.to_string(),
            fnum(client.latency.median() as f64 / 1e3),
            stats.probes_sent.to_string(),
            stats.probes_found_work.to_string(),
        ]);
    }
    t
}

fn loss_sweep() -> Table {
    let mut t = Table::new(
        "Ablation 3",
        "Go-Back-N under injected loss: completions and tail latency",
        &["drop prob", "completed", "p50 us", "p99 us"],
    )
    .with_paper_note("data-plane timeouts + Go-Back-N recover from drops (§5.3)");
    for &p in &[0.0, 0.005, 0.02] {
        let ops = 150u64;
        let (mut sim, cid, _eid) = build_cowbird_rig(CowbirdRig {
            seed: 23,
            record_size: 64,
            inflight: 8,
            target_ops: ops,
            engine_batch: 8,
            drop_probability: p,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(500).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        t.push_row(vec![
            format!("{p:.3}"),
            client.completed().to_string(),
            fnum(client.latency.median() as f64 / 1e3),
            fnum(client.latency.p99() as f64 / 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_reduces_messages() {
        let t = batch_sweep();
        let unbatched: f64 = t.cell_f64("1", "compute writes / op").unwrap();
        let batched: f64 = t.cell_f64("64", "compute writes / op").unwrap();
        assert!(batched < unbatched, "{batched} vs {unbatched}");
    }

    #[test]
    fn slower_probes_mean_fewer_probes_higher_latency() {
        let t = probe_sweep();
        let fast_p50: f64 = t.cell_f64("1", "p50 us").unwrap();
        let slow_p50: f64 = t.cell_f64("32", "p50 us").unwrap();
        assert!(slow_p50 > fast_p50);
        let fast_probes: f64 = t.cell_f64("1", "probes sent").unwrap();
        let slow_probes: f64 = t.cell_f64("32", "probes sent").unwrap();
        assert!(slow_probes < fast_probes);
    }

    #[test]
    fn loss_never_loses_operations() {
        let t = loss_sweep();
        for row in &t.rows {
            assert_eq!(row[1], "150", "drop {} lost ops", row[0]);
        }
        let clean_p99: f64 = t.cell_f64("0.000", "p99 us").unwrap();
        let lossy_p99: f64 = t.cell_f64("0.020", "p99 us").unwrap();
        assert!(lossy_p99 > clean_p99, "retransmission tail must show");
    }

    #[test]
    fn failover_recovers_after_detection_window() {
        let t = failover();
        for row in &t.rows {
            assert_eq!(row[1], "300", "takeover {} lost ops", row[0]);
        }
        // Recovery is bounded below by the detection delay and tracks it.
        let fast: f64 = t.cell_f64("100", "recovery us").unwrap();
        let slow: f64 = t.cell_f64("2000", "recovery us").unwrap();
        assert!(fast >= 100.0, "recovered before the standby woke: {fast}");
        assert!(slow >= 2000.0);
        assert!(slow > fast);
        // The workload must actually resume at speed after takeover.
        let post: f64 = t.cell_f64("100", "post-recovery Mops").unwrap();
        assert!(post > 0.1, "post-recovery throughput collapsed: {post}");
    }
}

//! Table 5: Cowbird-P4 data-plane resource usage on a 32-port L3-forwarding
//! Tofino — regenerated from the actual pipeline specification the
//! `cowbird-engine::p4` program declares.

use cowbird_engine::p4::cowbird_p4_spec;
use p4rt::resources::ResourceUsage;

use crate::report::Table;

pub fn run() -> Table {
    let spec = cowbird_p4_spec();
    spec.validate().expect("program must fit the switch");
    let u = ResourceUsage::of(&spec);
    let mut t = Table::new(
        "Table 5",
        "Cowbird-P4 data-plane resource usage",
        &["resource", "measured", "paper"],
    )
    .with_paper_note("PHV 1085 b | SRAM 1424 KB | TCAM 1.28 KB | 12 stages | 38 VLIW | 11 sALU");
    t.push_row(vec![
        "PHV (bits)".into(),
        u.phv_bits.to_string(),
        "1085".into(),
    ]);
    t.push_row(vec![
        "SRAM (KB)".into(),
        format!("{:.0}", u.sram_kb()),
        "1424".into(),
    ]);
    t.push_row(vec![
        "TCAM (KB)".into(),
        format!("{:.2}", u.tcam_kb()),
        "1.28".into(),
    ]);
    t.push_row(vec!["Stages".into(), u.stages.to_string(), "12".into()]);
    t.push_row(vec![
        "VLIW instructions".into(),
        u.vliw_instrs.to_string(),
        "38".into(),
    ]);
    t.push_row(vec!["sALUs".into(), u.salus.to_string(), "11".into()]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fields_match_table5() {
        let t = run();
        assert_eq!(t.cell("PHV (bits)", "measured"), Some("1085"));
        assert_eq!(t.cell("Stages", "measured"), Some("12"));
        assert_eq!(t.cell("VLIW instructions", "measured"), Some("38"));
        assert_eq!(t.cell("sALUs", "measured"), Some("11"));
    }

    #[test]
    fn sram_in_the_papers_neighborhood() {
        let t = run();
        let sram: f64 = t.cell_f64("SRAM (KB)", "measured").unwrap();
        assert!((1000.0..2000.0).contains(&sram), "SRAM {sram}");
        let tcam: f64 = t.cell_f64("TCAM (KB)", "measured").unwrap();
        assert!((tcam - 1.28).abs() < 0.25, "TCAM {tcam}");
    }
}

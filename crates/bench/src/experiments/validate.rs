//! Cross-validation: the closed-form throughput model against the
//! packet-level simulation, at anchor points where both apply.
//!
//! The model's synchronous-RDMA blocked time assumes a read RTT of
//! `NetParams::rtt_ns`; the packet-level rig measures the same quantity
//! from the actual protocol exchange. The Cowbird latency decomposition
//! (probe interval + 2 extra RTTs + engine processing) is likewise checked
//! against the simulated engine.

use baselines::model::Testbed;
use baselines::sim_client::{latency_rig, ClientMode, RdmaClientNode};
use simnet::link::LinkParams;
use simnet::time::Duration;

use crate::harness::{build_cowbird_rig, CowbirdClientNode, CowbirdRig};
use crate::report::{fnum, Table};

fn rack() -> LinkParams {
    LinkParams::new(100e9, Duration::from_nanos(1500))
}

pub fn run() -> Vec<Table> {
    vec![rtt_anchor(), cowbird_decomposition()]
}

/// Packet-level sync-read RTT vs the model's `rtt_ns` constant.
fn rtt_anchor() -> Table {
    let (mut sim, id) = latency_rig(11, 64, ClientMode::Closed, 300, rack());
    sim.run();
    let c: &RdmaClientNode = sim.node_ref(id);
    let measured = c.latency.median() as f64;
    let model = Testbed::paper().net.rtt_ns;
    let mut t = Table::new(
        "Validation A",
        "Sync one-sided read RTT: packet-level vs model constant (ns)",
        &["quantity", "packet-level", "model", "ratio"],
    );
    t.push_row(vec![
        "read RTT (64 B)".into(),
        fnum(measured),
        fnum(model),
        format!("{:.2}", measured / model),
    ]);
    t
}

/// Cowbird unbatched latency vs its analytic decomposition.
fn cowbird_decomposition() -> Table {
    let probe = Duration::from_micros(2);
    let (mut sim, id, _) = build_cowbird_rig(CowbirdRig {
        seed: 12,
        record_size: 64,
        inflight: 1,
        target_ops: 300,
        engine_batch: 1,
        probe_interval: probe,
        link: rack(),
        ..Default::default()
    });
    sim.run_until(None);
    let c: &CowbirdClientNode = sim.node_ref(id);
    let measured = c.latency.median() as f64;
    // Decomposition (§8.3): mean probe wait + green fetch RTT + metadata
    // fetch RTT + pool read RTT + response write one-way + poll detection.
    let rtt = 2.0 * 1500.0 + 200.0; // per compute<->engine exchange, ~ns
    let expected = probe.nanos() as f64 / 2.0 + 3.0 * rtt + 1500.0 + 250.0;
    let mut t = Table::new(
        "Validation B",
        "Unbatched Cowbird read latency vs analytic decomposition (ns)",
        &["quantity", "packet-level", "decomposition", "ratio"],
    )
    .with_paper_note("2 additional RTTs + engine processing + polling interval (§8.3)");
    t.push_row(vec![
        "cowbird p50 (64 B)".into(),
        fnum(measured),
        fnum(expected),
        format!("{:.2}", measured / expected),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_anchor_within_30_percent() {
        let t = rtt_anchor();
        let ratio: f64 = t.rows[0][3].parse().unwrap();
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cowbird_decomposition_within_40_percent() {
        let t = cowbird_decomposition();
        let ratio: f64 = t.rows[0][3].parse().unwrap();
        assert!((0.6..1.4).contains(&ratio), "ratio {ratio}");
    }
}

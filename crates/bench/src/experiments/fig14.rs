//! Figure 14: bandwidth of contending TCP flows (10 iperf3 streams from the
//! compute node toward a third server with a 25 Gbps NIC) while Cowbird
//! serves FASTER with 512 B records — with Cowbird-P4, with Cowbird-Spot,
//! and without Cowbird.
//!
//! ## Model
//!
//! The experiment configures Cowbird's RDMA packets at *higher* priority
//! than the user traffic (the paper's stated worst case). Bulk bytes are
//! nowhere near the 100 Gbps compute link's capacity, so the observable
//! interference is per-packet: every small high-priority packet (bookkeeping
//! writes, ACKs, probes) preempts the TCP stream's egress scheduling for an
//! arbitration slot. We charge [`ARBITRATION_SLOT_NS`] per small
//! high-priority packet — calibrated so Cowbird-P4 at 8 threads loses ~30 %
//! (the paper's worst case, "which reflects the lack of response batching
//! in the protocol") — and count packets per operation from the engine
//! protocol: P4 pays a bookkeeping write and an ACK per request, Spot
//! amortizes them over its response batches.

use baselines::model::Testbed;
use workloads::ycsb::YcsbSpec;

use crate::experiments::fig09::{backends, faster_mops, Backend};
use crate::report::{fnum, Table};

/// Effective TCP goodput of the 10 iperf3 flows on an idle 25 Gbps NIC.
pub const TCP_BASELINE_GBPS: f64 = 23.5;

/// Egress arbitration penalty per small high-priority packet.
pub const ARBITRATION_SLOT_NS: f64 = 8.5;

/// Small high-priority packets per operation (bookkeeping write + ACK
/// traffic + amortized probe/metadata exchange).
pub fn small_packets_per_op(batched: bool, batch: usize) -> f64 {
    if batched {
        // Red update + ACK amortized over the batch, probe/meta shared.
        2.5 / batch as f64 + 0.05
    } else {
        // Per request: red update, its ACK, plus probe/meta share.
        2.5
    }
}

/// TCP bandwidth while a Cowbird variant runs `threads` FASTER threads.
pub fn tcp_bandwidth_gbps(ops_mops: f64, batched: bool, batch: usize) -> f64 {
    let pkts_per_sec = ops_mops * 1e6 * small_packets_per_op(batched, batch);
    let loss = (pkts_per_sec * ARBITRATION_SLOT_NS / 1e9).min(0.35);
    TCP_BASELINE_GBPS * (1.0 - loss)
}

pub fn run() -> Table {
    let tb = Testbed::paper();
    let spec = YcsbSpec::paper_large(); // 512 B records, as in the paper
    let mut t = Table::new(
        "Figure 14",
        "Contending TCP bandwidth (Gbps), FASTER 512 B records",
        &["threads", "Cowbird-P4", "Cowbird-Spot", "w/o Cowbird"],
    )
    .with_paper_note(
        "Spot overhead negligible; P4 drops TCP by up to 30% in this worst case (no response batching)",
    );
    // Fig. 14 sweeps 1-8 application threads.
    let spot_backend = backends()[4].1;
    let p4_backend = backends()[3].1;
    let _ = Backend::Ssd; // series selection above is positional by design
    for n in [1u32, 2, 4, 8] {
        let p4_ops = faster_mops(p4_backend, n, &spec, &tb);
        let spot_ops = faster_mops(spot_backend, n, &spec, &tb);
        t.push_row(vec![
            n.to_string(),
            fnum(tcp_bandwidth_gbps(p4_ops, false, 1)),
            fnum(tcp_bandwidth_gbps(spot_ops, true, 100)),
            fnum(TCP_BASELINE_GBPS),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_worst_case_loses_up_to_30_percent() {
        let t = run();
        let p4_8 = t.cell_f64("8", "Cowbird-P4").unwrap();
        let base = t.cell_f64("8", "w/o Cowbird").unwrap();
        let loss = 1.0 - p4_8 / base;
        assert!((0.2..=0.35).contains(&loss), "loss {loss:.3}");
    }

    #[test]
    fn spot_overhead_negligible() {
        let t = run();
        for n in ["1", "2", "4", "8"] {
            let spot = t.cell_f64(n, "Cowbird-Spot").unwrap();
            let base = t.cell_f64(n, "w/o Cowbird").unwrap();
            assert!(1.0 - spot / base < 0.03, "threads {n}: {spot} vs {base}");
        }
    }

    #[test]
    fn interference_grows_with_threads() {
        let t = run();
        let p4_1 = t.cell_f64("1", "Cowbird-P4").unwrap();
        let p4_8 = t.cell_f64("8", "Cowbird-P4").unwrap();
        assert!(p4_8 < p4_1);
    }
}

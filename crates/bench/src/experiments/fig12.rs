//! Figure 12: uniform random reads of 8-byte objects — AIFM versus
//! Cowbird-Spot on the CloudLab xl170 deployment.

use baselines::aifm::AifmModel;
use baselines::model::{throughput_mops, Comm, Testbed};
use simnet::cpu::CpuSpec;

use crate::report::{fnum, Table};

/// A bare 8-byte object read loop: pointer chase + copy.
const APP_NS: f64 = 50.0;

fn xl170() -> Testbed {
    let mut tb = Testbed::paper();
    tb.cpu = CpuSpec::xl170();
    tb.net.bandwidth_gbps = 25.0;
    tb
}

pub fn run() -> Table {
    let tb = xl170();
    let aifm = AifmModel::paper();
    let mut t = Table::new(
        "Figure 12",
        "Uniform 8 B remote reads (xl170): AIFM vs Cowbird-Spot (MOPS)",
        &["threads", "AIFM", "Cowbird-Spot", "speedup"],
    )
    .with_paper_note("Cowbird an order of magnitude (up to 71x) higher across thread counts");
    for n in [1u32, 2, 4, 8, 16] {
        let a = aifm.throughput_mops(n, APP_NS, &tb);
        let c = throughput_mops(Comm::Cowbird, n, APP_NS, 1.0, 8, &tb, 0);
        t.push_row(vec![
            n.to_string(),
            fnum(a),
            fnum(c),
            format!("{:.0}x", c / a),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_of_magnitude_gap_everywhere() {
        let t = run();
        for n in ["1", "2", "4", "8", "16"] {
            let a = t.cell_f64(n, "AIFM").unwrap();
            let c = t.cell_f64(n, "Cowbird-Spot").unwrap();
            assert!(c / a >= 8.0, "threads {n}: {c}/{a}");
        }
    }

    #[test]
    fn aifm_plateaus_at_its_agent() {
        let t = run();
        let a8 = t.cell_f64("8", "AIFM").unwrap();
        let a16 = t.cell_f64("16", "AIFM").unwrap();
        assert!(a16 <= AifmModel::paper().agent_mops + 1e-9);
        assert!((a16 - a8) / a8 < 0.6);
    }
}

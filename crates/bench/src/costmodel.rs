//! Cloud pricing (paper Table 1 and §2.2) and the cost-efficiency argument.
//!
//! "With spot instances, the cost can be reduced by up to 90 %, which makes
//! even small improvements to compute-node CPU utilization worth it,
//! especially if these instances can handle multiple compute nodes
//! simultaneously. Some cloud platforms like GCP further provide pure spot
//! CPUs with even lower prices: $0.009638 per vCPU-hour."

/// One cloud VM price point (4 vCPUs, 16 GB — Table 1's shape).
#[derive(Clone, Copy, Debug)]
pub struct VmPrice {
    pub provider: &'static str,
    pub instance: &'static str,
    pub on_demand_per_hour: f64,
    pub spot_per_hour: f64,
}

impl VmPrice {
    /// Fractional savings of spot over on-demand.
    pub fn spot_discount(&self) -> f64 {
        1.0 - self.spot_per_hour / self.on_demand_per_hour
    }
}

/// Table 1's rows (prices as of 2023-07-24, per the paper).
pub fn table1_prices() -> [VmPrice; 3] {
    [
        VmPrice {
            provider: "GCP",
            instance: "c3-standard-4",
            on_demand_per_hour: 0.257,
            spot_per_hour: 0.059,
        },
        VmPrice {
            provider: "AWS",
            instance: "m5.xlarge",
            on_demand_per_hour: 0.192,
            spot_per_hour: 0.049,
        },
        VmPrice {
            provider: "Azure",
            instance: "D4s-v3",
            on_demand_per_hour: 0.236,
            spot_per_hour: 0.023,
        },
    ]
}

/// GCP's pure spot vCPU price quoted in §2.2, $/vCPU-hour.
pub const GCP_SPOT_VCPU_HOUR: f64 = 0.009638;

/// Dollar cost per billion offloaded operations when a spot engine core
/// sustains `engine_mops` and costs `vcpu_hour_price`.
pub fn engine_cost_per_gop(engine_mops: f64, vcpu_hour_price: f64) -> f64 {
    let ops_per_hour = engine_mops * 1e6 * 3600.0;
    vcpu_hour_price / ops_per_hour * 1e9
}

/// Dollar value of compute-node CPU freed per hour: `freed_cores`
/// on-demand cores at `on_demand_4vcpu_hour` (a 4-vCPU bundle price).
pub fn freed_cpu_value_per_hour(freed_cores: f64, on_demand_4vcpu_hour: f64) -> f64 {
    freed_cores * on_demand_4vcpu_hour / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discounts_match_paper_claim() {
        // "the cost can be reduced by up to 90%".
        let prices = table1_prices();
        let max = prices
            .iter()
            .map(|p| p.spot_discount())
            .fold(0.0f64, f64::max);
        assert!(max > 0.89, "max discount {max}");
        for p in prices {
            assert!(
                p.spot_discount() > 0.7,
                "{}: {}",
                p.provider,
                p.spot_discount()
            );
        }
    }

    #[test]
    fn offload_is_cheaper_than_the_cpu_it_frees() {
        // One spot core running the engine at ~2 MOPS versus the on-demand
        // compute cores Cowbird frees: the economics the paper argues.
        let engine_cost = engine_cost_per_gop(2.0, GCP_SPOT_VCPU_HOUR);
        // Freeing even half a core of on-demand GCP compute...
        let freed_value = freed_cpu_value_per_hour(0.5, 0.257);
        // ...pays for hours of engine time per hour.
        let engine_cost_per_hour = GCP_SPOT_VCPU_HOUR;
        assert!(freed_value > 3.0 * engine_cost_per_hour);
        assert!(engine_cost < 0.01, "cost per Gop {engine_cost}");
    }
}

//! Result tables: a uniform shape for every regenerated figure/table.

use std::fmt;

/// One regenerated paper artifact.
#[derive(Clone, Debug)]
pub struct Table {
    /// Paper artifact id, e.g. "Figure 8a" or "Table 5".
    pub id: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// What the paper reports for the same artifact (for EXPERIMENTS.md).
    pub paper_note: String,
}

impl Table {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            paper_note: String::new(),
        }
    }

    pub fn with_paper_note(mut self, note: &str) -> Table {
        self.paper_note = note.to_string();
        self
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Look up a cell by row key (first column) and column name.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_key)?;
        Some(row.get(col)?.as_str())
    }

    /// Numeric cell accessor.
    pub fn cell_f64(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell(row_key, column)?.parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
        }
        if !self.paper_note.is_empty() {
            writeln!(f, "  [paper: {}]", self.paper_note)?;
        }
        Ok(())
    }
}

/// Directory `metrics.json` documents land in: `$COWBIRD_METRICS_DIR` or
/// `target/metrics`.
pub fn metrics_dir() -> std::path::PathBuf {
    std::env::var_os("COWBIRD_METRICS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/metrics"))
}

/// Serialize one artifact's metrics snapshot (usually a registry diff
/// scoped to the run) as `<metrics_dir>/<slug>.metrics.json`. Returns the
/// path written.
pub fn write_metrics_json(
    artifact: &str,
    snap: &telemetry::MetricsSnapshot,
) -> std::io::Result<std::path::PathBuf> {
    let slug: String = artifact
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    let dir = metrics_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{slug}.metrics.json"));
    std::fs::write(&path, snap.to_json())?;
    Ok(path)
}

/// Format a float with sensible precision for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_lookup() {
        let mut t = Table::new("Figure X", "demo", &["threads", "mops"]);
        t.push_row(vec!["1".into(), "2.50".into()]);
        t.push_row(vec!["2".into(), "5.00".into()]);
        let s = t.to_string();
        assert!(s.contains("Figure X"));
        assert!(s.contains("2.50"));
        assert_eq!(t.cell("2", "mops"), Some("5.00"));
        assert_eq!(t.cell_f64("1", "mops"), Some(2.5));
        assert_eq!(t.cell("3", "mops"), None);
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(123.456), "123");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(0.0), "0");
    }
}

//! Result tables: a uniform shape for every regenerated figure/table.

use std::fmt;

/// One regenerated paper artifact.
#[derive(Clone, Debug)]
pub struct Table {
    /// Paper artifact id, e.g. "Figure 8a" or "Table 5".
    pub id: String,
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// What the paper reports for the same artifact (for EXPERIMENTS.md).
    pub paper_note: String,
}

impl Table {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            paper_note: String::new(),
        }
    }

    pub fn with_paper_note(mut self, note: &str) -> Table {
        self.paper_note = note.to_string();
        self
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Look up a cell by row key (first column) and column name.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|r| r[0] == row_key)?;
        Some(row.get(col)?.as_str())
    }

    /// Numeric cell accessor.
    pub fn cell_f64(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell(row_key, column)?.parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
        }
        if !self.paper_note.is_empty() {
            writeln!(f, "  [paper: {}]", self.paper_note)?;
        }
        Ok(())
    }
}

/// Directory `metrics.json` documents land in: `$COWBIRD_METRICS_DIR` or
/// `target/metrics`.
pub fn metrics_dir() -> std::path::PathBuf {
    std::env::var_os("COWBIRD_METRICS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/metrics"))
}

/// Serialize one artifact's metrics snapshot (usually a registry diff
/// scoped to the run) as `<metrics_dir>/<slug>.metrics.json`. Returns the
/// path written.
pub fn write_metrics_json(
    artifact: &str,
    snap: &telemetry::MetricsSnapshot,
) -> std::io::Result<std::path::PathBuf> {
    let slug: String = artifact
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    let dir = metrics_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{slug}.metrics.json"));
    std::fs::write(&path, snap.to_json())?;
    Ok(path)
}

// --- Bench trajectory: BENCH_<gitsha>.json entries at the repo root ---
//
// Every full bench run appends one headline-metrics document to the repo
// root, keyed by commit sha. The comparator diffs the newest entry against
// the previous one and *warns* (never fails) when a headline metric moved
// beyond tolerance — trajectories drift for good reasons; the gate makes
// the drift visible in CI instead of blocking on it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench has a repo root")
        .to_path_buf()
}

/// The commit sha stamped into trajectory filenames: `$COWBIRD_GIT_SHA`,
/// else `git rev-parse --short HEAD`, else `unknown`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("COWBIRD_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(repo_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Relative-change tolerance of the warn-only gate
/// (`$COWBIRD_BENCH_TOL`, default 0.25).
pub fn bench_tolerance() -> f64 {
    std::env::var("COWBIRD_BENCH_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Flatten one artifact's metrics diff into trajectory keys
/// `<artifact>/<kind>/<metric>` (histograms keep count/p50/p99/p99.9 only —
/// the headline shape, not the full digest).
fn flatten_run(artifact: &str, snap: &telemetry::MetricsSnapshot, out: &mut BTreeMap<String, f64>) {
    for (k, v) in &snap.counters {
        out.insert(format!("{artifact}/counter/{k}"), *v as f64);
    }
    for (k, v) in &snap.gauges {
        if v.is_finite() {
            out.insert(format!("{artifact}/gauge/{k}"), *v);
        }
    }
    for (k, h) in &snap.hists {
        out.insert(format!("{artifact}/hist/{k}/count"), h.count as f64);
        out.insert(format!("{artifact}/hist/{k}/p50"), h.p50 as f64);
        out.insert(format!("{artifact}/hist/{k}/p99"), h.p99 as f64);
        out.insert(format!("{artifact}/hist/{k}/p999"), h.p999 as f64);
    }
}

fn render_trajectory(sha: &str, metrics: &BTreeMap<String, f64>) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"git_sha\": \"{sha}\",\n"));
    s.push_str("  \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        s.push_str(&format!("    \"{k}\": {v}{sep}\n"));
    }
    s.push_str("  }\n}\n");
    s
}

/// Write `<dir>/BENCH_<sha>.json` from per-artifact metrics diffs. One
/// metric per line so the comparator can read it back without a JSON
/// parser. A pre-existing entry for the same sha is **merged**, not
/// clobbered: keys for the artifacts just run are replaced, keys from
/// artifacts outside this (possibly filtered) run are kept — so
/// `--bench figures -- <name>` refreshes one artifact without discarding
/// the rest of the trajectory entry. Returns the path written.
pub fn write_bench_trajectory_to(
    dir: &Path,
    sha: &str,
    runs: &[(String, telemetry::MetricsSnapshot)],
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{sha}.json"));
    let mut metrics = read_bench_trajectory(&path).unwrap_or_default();
    for (artifact, _) in runs {
        let prefix = format!("{artifact}/");
        metrics.retain(|k, _| !k.starts_with(&prefix));
    }
    for (artifact, snap) in runs {
        flatten_run(artifact, snap, &mut metrics);
    }
    std::fs::write(&path, render_trajectory(sha, &metrics))?;
    Ok(path)
}

/// [`write_bench_trajectory_to`] at the repo root under the current sha.
pub fn write_bench_trajectory(
    runs: &[(String, telemetry::MetricsSnapshot)],
) -> std::io::Result<PathBuf> {
    write_bench_trajectory_to(&repo_root(), &git_sha(), runs)
}

/// Read a trajectory entry back as a flat metric map. The file is JSON,
/// but it is scanned line-wise (`"key": number`) so nothing here depends
/// on a JSON parser; the `git_sha` line (string value) is skipped.
pub fn read_bench_trajectory(path: &Path) -> std::io::Result<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once("\": ") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.trim_start_matches('"').to_string(), v);
        }
    }
    Ok(out)
}

/// The most recently modified `BENCH_*.json` in `dir` other than
/// `exclude` (the entry being compared).
pub fn previous_bench_entry_in(dir: &Path, exclude: &Path) -> Option<PathBuf> {
    let exclude_name = exclude.file_name()?.to_owned();
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let n = name.to_string_lossy().to_string();
        if !n.starts_with("BENCH_") || !n.ends_with(".json") || name == exclude_name {
            continue;
        }
        let Ok(mtime) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
            best = Some((mtime, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

/// One metric that moved beyond tolerance between two trajectory entries.
#[derive(Clone, Debug)]
pub struct BenchDrift {
    pub key: String,
    pub prev: f64,
    pub cur: f64,
    /// Signed relative change `(cur - prev) / |prev|`.
    pub rel: f64,
    /// Hard-gated headline metric that moved in its regression direction:
    /// CI fails on these instead of warning.
    pub critical: bool,
}

impl fmt::Display for BenchDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} ({:+.1}%){}",
            self.key,
            self.prev,
            self.cur,
            self.rel * 100.0,
            if self.critical { " [CRITICAL]" } else { "" },
        )
    }
}

/// Is `rel` a regression of a hard-gated headline metric? The classifier
/// knows two directions: *lower-is-better* metrics (per-op engine cost
/// `per_op_virtual_ns`/`per_op_model_ns`, simulator `allocs_per_event`,
/// kvstore GET cost `kv_get_per_op_ns` and its `kv_get_round_trips`
/// round-trip count) hard-fail when they rise, and *higher-is-better*
/// metrics (freed cores, simulator `events_per_sec` throughput) hard-fail
/// when they fall. Every other metric — and a hard-gated one moving in its
/// *good* direction — is warn-only drift.
fn critical_regression(key: &str, rel: f64) -> bool {
    let lower_is_better = [
        "per_op_virtual_ns",
        "per_op_model_ns",
        "allocs_per_event",
        "kv_get_per_op_ns",
        "kv_get_round_trips",
    ];
    let higher_is_better = ["freed_cores", "events_per_sec"];
    if lower_is_better.iter().any(|m| key.contains(m)) {
        rel > 0.0
    } else if higher_is_better.iter().any(|m| key.contains(m)) {
        rel < 0.0
    } else {
        false
    }
}

/// Diff two trajectory entries: one [`BenchDrift`] per metric present in
/// both whose relative change exceeds `tol`, critical-classified.
pub fn classify_bench_entries(
    current: &Path,
    previous: &Path,
    tol: f64,
) -> std::io::Result<Vec<BenchDrift>> {
    let cur = read_bench_trajectory(current)?;
    let prev = read_bench_trajectory(previous)?;
    let mut drifts = Vec::new();
    for (k, &pv) in &prev {
        let Some(&cv) = cur.get(k) else { continue };
        let rel = (cv - pv) / pv.abs().max(1e-12);
        if rel.abs() > tol {
            drifts.push(BenchDrift {
                key: k.clone(),
                prev: pv,
                cur: cv,
                rel,
                critical: critical_regression(k, rel),
            });
        }
    }
    Ok(drifts)
}

/// String form of [`classify_bench_entries`] (one warning per drift).
pub fn diff_bench_entries(
    current: &Path,
    previous: &Path,
    tol: f64,
) -> std::io::Result<Vec<String>> {
    let prev_name = previous
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    Ok(classify_bench_entries(current, previous, tol)?
        .into_iter()
        .map(|d| format!("{d} (vs {prev_name}, tolerance {:.0}%)", tol * 100.0))
        .collect())
}

/// The warn-only gate: compare a fresh entry against the previous one at
/// the repo root. Empty when no previous entry exists.
pub fn compare_bench_trajectory(current: &Path) -> std::io::Result<Vec<String>> {
    let dir = current.parent().unwrap_or(Path::new("."));
    match previous_bench_entry_in(dir, current) {
        Some(prev) => diff_bench_entries(current, &prev, bench_tolerance()),
        None => Ok(Vec::new()),
    }
}

/// [`classify_bench_entries`] against the previous entry at the repo root
/// — the CI comparator's view, where critical drifts hard-fail.
pub fn classify_bench_trajectory(current: &Path) -> std::io::Result<Vec<BenchDrift>> {
    let dir = current.parent().unwrap_or(Path::new("."));
    match previous_bench_entry_in(dir, current) {
        Some(prev) => classify_bench_entries(current, &prev, bench_tolerance()),
        None => Ok(Vec::new()),
    }
}

/// Format a float with sensible precision for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_lookup() {
        let mut t = Table::new("Figure X", "demo", &["threads", "mops"]);
        t.push_row(vec!["1".into(), "2.50".into()]);
        t.push_row(vec!["2".into(), "5.00".into()]);
        let s = t.to_string();
        assert!(s.contains("Figure X"));
        assert!(s.contains("2.50"));
        assert_eq!(t.cell("2", "mops"), Some("5.00"));
        assert_eq!(t.cell_f64("1", "mops"), Some(2.5));
        assert_eq!(t.cell("3", "mops"), None);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cowbird-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn snap_with(gauge: (&str, f64), counter: (&str, u64)) -> telemetry::MetricsSnapshot {
        let mut s = telemetry::MetricsSnapshot::default();
        s.gauges.insert(gauge.0.to_string(), gauge.1);
        s.counters.insert(counter.0.to_string(), counter.1);
        s
    }

    #[test]
    fn trajectory_round_trips_and_is_valid_json() {
        let dir = temp_dir("roundtrip");
        let runs = vec![(
            "fig02".to_string(),
            snap_with(("cowbird.profile.freed_cores", 0.445), ("ops", 10_000)),
        )];
        let path = write_bench_trajectory_to(&dir, "abc123", &runs).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_abc123.json");
        telemetry::json::validate(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let back = read_bench_trajectory(&path).unwrap();
        assert_eq!(
            back.get("fig02/gauge/cowbird.profile.freed_cores"),
            Some(&0.445)
        );
        assert_eq!(back.get("fig02/counter/ops"), Some(&10_000.0));
        // The sha line is a string, not a metric.
        assert!(!back.contains_key("git_sha"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn filtered_rewrite_merges_into_the_existing_entry() {
        let dir = temp_dir("merge");
        write_bench_trajectory_to(
            &dir,
            "abc123",
            &[
                ("fig02".to_string(), snap_with(("frac", 0.5), ("ops", 100))),
                ("tail".to_string(), snap_with(("p999", 80.0), ("ops", 7))),
            ],
        )
        .unwrap();
        // A filtered run refreshing only fig02 must keep tail's keys and
        // replace (not union) fig02's: the dropped counter disappears.
        let mut refreshed = telemetry::MetricsSnapshot::default();
        refreshed.gauges.insert("frac".into(), 0.6);
        let path =
            write_bench_trajectory_to(&dir, "abc123", &[("fig02".to_string(), refreshed)]).unwrap();
        telemetry::json::validate(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let back = read_bench_trajectory(&path).unwrap();
        assert_eq!(back.get("fig02/gauge/frac"), Some(&0.6));
        assert_eq!(back.get("fig02/counter/ops"), None);
        assert_eq!(back.get("tail/gauge/p999"), Some(&80.0));
        assert_eq!(back.get("tail/counter/ops"), Some(&7.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn comparator_warns_only_beyond_tolerance() {
        let dir = temp_dir("compare");
        let old = write_bench_trajectory_to(
            &dir,
            "old",
            &[("fig02".to_string(), snap_with(("frac", 0.5), ("ops", 100)))],
        )
        .unwrap();
        let new = write_bench_trajectory_to(
            &dir,
            "new",
            &[(
                "fig02".to_string(),
                // frac regressed 40%; ops moved 10% (inside tolerance).
                snap_with(("frac", 0.3), ("ops", 110)),
            )],
        )
        .unwrap();
        let warnings = diff_bench_entries(&new, &old, 0.25).unwrap();
        assert_eq!(warnings.len(), 1, "warnings: {warnings:?}");
        assert!(warnings[0].starts_with("fig02/gauge/frac"));
        assert!(diff_bench_entries(&new, &old, 0.5).unwrap().is_empty());
        // previous_bench_entry_in skips the entry under comparison.
        let prev = previous_bench_entry_in(&dir, &new).unwrap();
        assert_eq!(prev, old);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_gate_fails_cost_and_freed_core_regressions_only() {
        let dir = temp_dir("classify");
        let mut old_snap = telemetry::MetricsSnapshot::default();
        old_snap
            .gauges
            .insert("scale.per_op_virtual_ns".into(), 1000.0);
        old_snap.gauges.insert("profile.freed_cores".into(), 0.5);
        old_snap.gauges.insert("misc.latency".into(), 10.0);
        let mut new_snap = telemetry::MetricsSnapshot::default();
        // Cost up 40% (regression), freed cores up 40% (improvement),
        // unclassified metric up 40% (drift).
        new_snap
            .gauges
            .insert("scale.per_op_virtual_ns".into(), 1400.0);
        new_snap.gauges.insert("profile.freed_cores".into(), 0.7);
        new_snap.gauges.insert("misc.latency".into(), 14.0);
        let old = write_bench_trajectory_to(&dir, "old", &[("a".into(), old_snap)]).unwrap();
        let new = write_bench_trajectory_to(&dir, "new", &[("a".into(), new_snap)]).unwrap();
        let drifts = classify_bench_entries(&new, &old, 0.25).unwrap();
        assert_eq!(drifts.len(), 3, "{drifts:?}");
        let by_key = |needle: &str| {
            drifts
                .iter()
                .find(|d| d.key.contains(needle))
                .unwrap_or_else(|| panic!("no drift for {needle}: {drifts:?}"))
        };
        assert!(by_key("per_op_virtual_ns").critical, "cost rise hard-fails");
        assert!(!by_key("freed_cores").critical, "freed-core gain is fine");
        assert!(!by_key("misc.latency").critical, "unclassified warns only");
        // Reverse direction: cost drop is fine, freed-core loss hard-fails.
        let rev = classify_bench_entries(&old, &new, 0.25).unwrap();
        let cost = rev.iter().find(|d| d.key.contains("per_op")).unwrap();
        let freed = rev.iter().find(|d| d.key.contains("freed")).unwrap();
        assert!(!cost.critical);
        assert!(freed.critical);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_gate_knows_higher_is_better_metrics() {
        let dir = temp_dir("classify-dir");
        let mut old_snap = telemetry::MetricsSnapshot::default();
        old_snap
            .gauges
            .insert("cowbird.sim.events_per_sec".into(), 1_000_000.0);
        old_snap
            .gauges
            .insert("cowbird.sim.allocs_per_event".into(), 2.0);
        let mut new_snap = telemetry::MetricsSnapshot::default();
        // Throughput fell 40% (regression); allocs/event fell 50%
        // (improvement — lower is better).
        new_snap
            .gauges
            .insert("cowbird.sim.events_per_sec".into(), 600_000.0);
        new_snap
            .gauges
            .insert("cowbird.sim.allocs_per_event".into(), 1.0);
        let old = write_bench_trajectory_to(&dir, "old", &[("sim".into(), old_snap)]).unwrap();
        let new = write_bench_trajectory_to(&dir, "new", &[("sim".into(), new_snap)]).unwrap();
        let drifts = classify_bench_entries(&new, &old, 0.25).unwrap();
        let by_key = |needle: &str| {
            drifts
                .iter()
                .find(|d| d.key.contains(needle))
                .unwrap_or_else(|| panic!("no drift for {needle}: {drifts:?}"))
        };
        assert!(
            by_key("events_per_sec").critical,
            "throughput drop hard-fails"
        );
        assert!(
            !by_key("allocs_per_event").critical,
            "alloc-rate drop is an improvement"
        );
        // Reverse direction: throughput gain is fine, alloc-rate rise fails.
        let rev = classify_bench_entries(&old, &new, 0.25).unwrap();
        let eps = rev.iter().find(|d| d.key.contains("events_per")).unwrap();
        let ape = rev.iter().find(|d| d.key.contains("allocs_per")).unwrap();
        assert!(!eps.critical, "throughput gain warns only");
        assert!(ape.critical, "alloc-rate rise hard-fails");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hard_gate_treats_kv_get_metrics_as_lower_is_better() {
        let dir = temp_dir("classify-kv");
        let mut old_snap = telemetry::MetricsSnapshot::default();
        old_snap
            .gauges
            .insert("cowbird.kv.get.kv_get_per_op_ns".into(), 2600.0);
        old_snap
            .gauges
            .insert("cowbird.kv.get.kv_get_round_trips".into(), 1.0);
        let mut new_snap = telemetry::MetricsSnapshot::default();
        // GET cost up 50% and round trips back to 2 — both regressions.
        new_snap
            .gauges
            .insert("cowbird.kv.get.kv_get_per_op_ns".into(), 3900.0);
        new_snap
            .gauges
            .insert("cowbird.kv.get.kv_get_round_trips".into(), 2.0);
        let old = write_bench_trajectory_to(&dir, "old", &[("chase".into(), old_snap)]).unwrap();
        let new = write_bench_trajectory_to(&dir, "new", &[("chase".into(), new_snap)]).unwrap();
        let drifts = classify_bench_entries(&new, &old, 0.25).unwrap();
        let by_key = |needle: &str| {
            drifts
                .iter()
                .find(|d| d.key.contains(needle))
                .unwrap_or_else(|| panic!("no drift for {needle}: {drifts:?}"))
        };
        assert!(
            by_key("kv_get_per_op_ns").critical,
            "per-GET cost rise hard-fails"
        );
        assert!(
            by_key("kv_get_round_trips").critical,
            "round-trip count rise hard-fails"
        );
        // Reverse direction — the chase landing — is an improvement.
        let rev = classify_bench_entries(&old, &new, 0.25).unwrap();
        assert!(rev.iter().all(|d| !d.critical), "{rev:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_sha_prefers_the_env_override() {
        // Env mutation is process-global; this test owns the variable.
        std::env::set_var("COWBIRD_GIT_SHA", "deadbeef");
        assert_eq!(git_sha(), "deadbeef");
        std::env::remove_var("COWBIRD_GIT_SHA");
        let sha = git_sha();
        assert!(!sha.is_empty());
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(123.456), "123");
        assert_eq!(fnum(12.345), "12.35");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(0.0), "0");
    }
}

//! # experiments — the harness that regenerates every table and figure
//!
//! One module per paper artifact (see `DESIGN.md`'s experiment index). Each
//! experiment returns a [`report::Table`] whose rows mirror what the paper
//! plots; the `benches/` targets print them, and `EXPERIMENTS.md` records
//! paper-vs-measured values.
//!
//! ## Methodology split
//!
//! * **Throughput figures** (1, 8, 9, 10, 11, 12) come from the calibrated
//!   closed-form model in `baselines::model` (constants documented against
//!   Figure 2 and the testbed hardware).
//! * **Latency and traffic figures** (13, 14) and the **validation**
//!   experiments run packet-level on `simnet` with the real protocol stack
//!   (`rdma` + `cowbird` + `cowbird-engine`).
//! * **Resource/price tables** (1, 5) are computed from the `p4rt` resource
//!   accountant and the cost calculator.

pub mod costmodel;
pub mod experiments;
pub mod harness;
pub mod report;

pub use report::Table;

/// The unit-test binary counts allocations so the `sim_throughput` tests
/// can assert the kernel's allocs-per-event attribution end to end.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: telemetry::profile::TallyAlloc = telemetry::profile::TallyAlloc;

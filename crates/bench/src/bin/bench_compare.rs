//! Bench-trajectory comparator for CI.
//!
//! Usage: `cargo run -p cowbird-bench --bin bench_compare [BENCH_<sha>.json]`
//!
//! Compares the given trajectory entry (default: the newest
//! `BENCH_*.json` at the repo root) against the previous one. Metrics that
//! moved beyond `$COWBIRD_BENCH_TOL` (default 25%) are reported; most are
//! warn-only — trajectories drift for good reasons — but the hard-gated
//! headline metrics (per-op engine cost rising, freed cores falling) fail
//! the run with a nonzero exit code.

use std::path::PathBuf;

use experiments::report::{
    bench_tolerance, classify_bench_trajectory, previous_bench_entry_in, repo_root,
};

fn newest_entry() -> Option<PathBuf> {
    // "Newest other than a name no entry has" == newest overall.
    previous_bench_entry_in(&repo_root(), &repo_root().join("BENCH_.none"))
}

fn main() {
    let current = match std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(newest_entry)
    {
        Some(p) => p,
        None => {
            eprintln!(
                "bench_compare: no BENCH_*.json found at {}",
                repo_root().display()
            );
            std::process::exit(1);
        }
    };
    match classify_bench_trajectory(&current) {
        Ok(drifts) if drifts.is_empty() => {
            println!(
                "bench_compare: {} within {:.0}% of the previous entry",
                current.display(),
                bench_tolerance() * 100.0
            );
        }
        Ok(drifts) => {
            let critical = drifts.iter().filter(|d| d.critical).count();
            println!(
                "bench_compare: {} metric(s) moved beyond {:.0}% ({} critical):",
                drifts.len(),
                bench_tolerance() * 100.0,
                critical,
            );
            for d in &drifts {
                println!("  {d}");
            }
            if critical > 0 {
                eprintln!(
                    "bench_compare: FAIL — per-op cost / freed-cores regressed beyond tolerance"
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench_compare: cannot compare {}: {e}", current.display());
            std::process::exit(1);
        }
    }
}

//! Bench-trajectory comparator for CI.
//!
//! Usage: `cargo run -p cowbird-bench --bin bench_compare [BENCH_<sha>.json]`
//!
//! Compares the given trajectory entry (default: the newest
//! `BENCH_*.json` at the repo root) against the previous one and prints a
//! warning per headline metric that moved beyond `$COWBIRD_BENCH_TOL`
//! (default 25%). Warn-only: the exit code is 0 unless the files cannot be
//! read at all — the gate makes drift visible, it does not block merges.

use std::path::PathBuf;

use experiments::report::{
    bench_tolerance, compare_bench_trajectory, previous_bench_entry_in, repo_root,
};

fn newest_entry() -> Option<PathBuf> {
    // "Newest other than a name no entry has" == newest overall.
    previous_bench_entry_in(&repo_root(), &repo_root().join("BENCH_.none"))
}

fn main() {
    let current = match std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(newest_entry)
    {
        Some(p) => p,
        None => {
            eprintln!(
                "bench_compare: no BENCH_*.json found at {}",
                repo_root().display()
            );
            std::process::exit(1);
        }
    };
    match compare_bench_trajectory(&current) {
        Ok(warnings) if warnings.is_empty() => {
            println!(
                "bench_compare: {} within {:.0}% of the previous entry",
                current.display(),
                bench_tolerance() * 100.0
            );
        }
        Ok(warnings) => {
            println!(
                "bench_compare: {} metric(s) moved beyond {:.0}% (warn-only):",
                warnings.len(),
                bench_tolerance() * 100.0
            );
            for w in warnings {
                println!("  {w}");
            }
        }
        Err(e) => {
            eprintln!("bench_compare: cannot compare {}: {e}", current.display());
            std::process::exit(1);
        }
    }
}

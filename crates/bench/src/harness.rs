//! Packet-level rigs: a Cowbird compute-node client for `simnet`, and the
//! standard three-node topology (compute ↔ engine ↔ pool) used by the
//! latency and validation experiments.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::meta::{ChaseStatus, CHASE_PTR_MASK};
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird::reqid::{OpType, ReqId};
use cowbird_engine::core::EngineConfig;
use cowbird_engine::sim::{EngineNode, PoolNode};
use rdma::mem::Region;
use rdma::qp::QpConfig;
use rdma::sim::{NicOutput, SimNic};
use simnet::link::{LinkId, LinkParams};
use simnet::sim::{Ctx, Node, NodeId, Packet, Sim};
use simnet::stats::Histogram;
use simnet::time::{Duration, Instant};
use telemetry::{Component, EventKind, SloWatchdog, TailViolation, Telemetry};

const TAG_POLL: u64 = 1;
const TAG_NIC_TICK: u64 = 2;

/// Chase-race mode: pointer words cycle through this many slots in the
/// pool's top page, out of the plain-read record span. Slot reuse distance
/// (`CHASE_SLOTS * 4` ops) must exceed the inflight window so a chase's
/// oracle — the latest preceding write to its slot — is unambiguous.
const CHASE_SLOTS: u64 = 8;
/// Bytes reserved at the top of the pool for the chase slot words.
const CHASE_SLOT_PAGE: u64 = 4096;

/// A compute node running the Cowbird client library: issues reads of
/// `record_size` bytes, keeps `inflight` outstanding, and measures
/// issue-to-completion latency. Its NIC serves the offload engine's RDMA
/// traffic without any "CPU" involvement (no simulated cost — that is the
/// whole point).
pub struct CowbirdClientNode {
    nic: SimNic,
    /// NIC output scratch, reused across deliveries (zero-alloc hot path).
    nic_out: NicOutput,
    channel: Channel,
    record_size: u32,
    inflight_target: usize,
    target_ops: u64,
    issued: u64,
    completed: u64,
    outstanding: Vec<(cowbird::channel::ReadHandle, Instant, u64)>,
    pool_span: u64,
    poll_interval: Duration,
    /// Delay before the first issue (models an idle application phase; used
    /// by the adaptive-probe ablation).
    start_after: Duration,
    pub latency: Histogram,
    /// Latency of the very first completed op (ns).
    first_latency: Option<u64>,
    pub done_at: Option<Instant>,
    pub stop_when_done: bool,
    /// Check every read's payload against the pool's deterministic content
    /// (offset stamp). The failover ablation uses this to prove takeover
    /// re-execution never hands back wrong bytes; requires 64 B records.
    verify_data: bool,
    /// Virtual time of every completion, in completion order (the failover
    /// throughput timeline).
    pub completion_times: Vec<Instant>,
    /// Fence the engine when no completion has arrived for this long while
    /// requests are outstanding (`None` disables the watchdog).
    watchdog: Option<Duration>,
    /// Virtual time of the last observed completion (watchdog reference).
    last_progress_at: Instant,
    /// Set after the watchdog fences; cleared when progress resumes, so a
    /// single stall episode fences exactly once (the successor adopts at
    /// the fence epoch — a second bump would out-epoch it too).
    stall_fenced: bool,
    /// Tail-latency SLO watchdog fed on every completion (`None` disables).
    tail_slo: Option<SloWatchdog>,
    /// Response-copy scratch for [`Channel::take_response_into`], reused
    /// across completions (zero-alloc reap path).
    resp_scratch: Vec<u8>,
    /// Violations the SLO watchdog flagged, in firing order.
    pub tail_violations: Vec<TailViolation>,
    /// Dependent-op race mode: the issue schedule cycles
    /// write-slot → chase-slot → read → read, so every chase dereferences
    /// a pointer word its own channel just staged — the conflict gate must
    /// hold the chase until the write commits.
    chase_race: bool,
    /// Latest pointer issued per chase slot. Ring FIFO plus the conflict
    /// gate make this the exact oracle: a chase observes precisely the
    /// last write to its slot that precedes it in ring order.
    slot_ptr: Vec<u64>,
    outstanding_chases: Vec<(cowbird::channel::ReadHandle, Instant, u64)>,
    outstanding_writes: Vec<ReqId>,
    /// Chase completions verified against the oracle.
    pub chases_completed: u64,
}

impl CowbirdClientNode {
    fn issue(&mut self, ctx: &mut Ctx) {
        while self.outstanding.len() + self.outstanding_chases.len() + self.outstanding_writes.len()
            < self.inflight_target
            && self.issued < self.target_ops
        {
            if self.chase_race {
                if !self.issue_chase_race(ctx) {
                    break; // ring full; poll will drain space
                }
                continue;
            }
            let max_rec = self.pool_span / self.record_size.max(1) as u64;
            let off = ctx.rng().next_below(max_rec) * self.record_size as u64;
            match self.channel.async_read(1, off, self.record_size) {
                Ok(h) => {
                    self.outstanding.push((h, ctx.now(), off));
                    self.issued += 1;
                }
                Err(e) if e.is_retryable() => break, // poll will drain space
                Err(e) => panic!("issue failed: {e}"),
            }
        }
    }

    /// One op of the write → chase → read → read schedule. Returns `false`
    /// on a retryable ring-full error (the next poll retries; `issued` is
    /// unchanged, so the schedule position is preserved).
    fn issue_chase_race(&mut self, ctx: &mut Ctx) -> bool {
        // Plain reads and chase targets stay below the slot page so the
        // racing slot writes never corrupt a verified record payload.
        let span = self.pool_span - CHASE_SLOT_PAGE;
        let max_rec = span / self.record_size.max(1) as u64;
        let slot = (self.issued / 4) % CHASE_SLOTS;
        let slot_addr = self.pool_span - CHASE_SLOT_PAGE + slot * 8;
        match self.issued % 4 {
            0 => {
                // Record 0 excluded: its stamp is 0, which the dereference
                // would read as a null pointer (no payload to verify).
                let ptr = (1 + ctx.rng().next_below(max_rec - 1)) * self.record_size as u64;
                match self.channel.async_write(1, slot_addr, &ptr.to_le_bytes()) {
                    Ok(id) => {
                        self.outstanding_writes.push(id);
                        self.slot_ptr[slot as usize] = ptr;
                        self.issued += 1;
                        true
                    }
                    Err(e) if e.is_retryable() => false,
                    Err(e) => panic!("chase-race write failed: {e}"),
                }
            }
            1 => {
                let expect = self.slot_ptr[slot as usize];
                match self
                    .channel
                    .async_read_indirect(1, slot_addr, 0, 0, self.record_size)
                {
                    Ok(h) => {
                        self.outstanding_chases.push((h, ctx.now(), expect));
                        self.issued += 1;
                        true
                    }
                    Err(e) if e.is_retryable() => false,
                    Err(e) => panic!("chase-race chase failed: {e}"),
                }
            }
            _ => {
                let off = ctx.rng().next_below(max_rec) * self.record_size as u64;
                match self.channel.async_read(1, off, self.record_size) {
                    Ok(h) => {
                        self.outstanding.push((h, ctx.now(), off));
                        self.issued += 1;
                        true
                    }
                    Err(e) if e.is_retryable() => false,
                    Err(e) => panic!("chase-race read failed: {e}"),
                }
            }
        }
    }

    fn reap(&mut self, ctx: &mut Ctx) {
        self.channel.recorder().set_now_ns(ctx.now().nanos());
        self.channel.refresh();
        let mut i = 0;
        while i < self.outstanding.len() {
            let (h, t0, off) = self.outstanding[i];
            if h.id
                .completed_by(self.channel.progress(cowbird::reqid::OpType::Read))
            {
                let lat = ctx.now().since(t0);
                self.first_latency.get_or_insert(lat.nanos());
                self.latency.record(lat.nanos());
                self.channel.recorder().record(
                    Component::Client,
                    EventKind::RequestCompleted,
                    h.id.raw(),
                    lat.nanos(),
                    0,
                );
                if let Some(wd) = self.tail_slo.as_mut() {
                    if let Some(v) = wd.observe("read", h.id.raw(), lat.nanos()) {
                        self.channel.recorder().record(
                            Component::Client,
                            EventKind::TailViolation,
                            v.req,
                            v.latency_ns,
                            v.p999_ns,
                        );
                        self.tail_violations.push(v);
                    }
                }
                self.channel
                    .take_response_into(&h, &mut self.resp_scratch)
                    .expect("completed read");
                if self.verify_data {
                    let expect = (off / 64).to_le_bytes();
                    assert_eq!(
                        &self.resp_scratch[..8],
                        &expect[..],
                        "read {:?} at offset {off} returned wrong bytes",
                        h.id
                    );
                }
                self.outstanding.swap_remove(i);
                self.completed += 1;
                self.completion_times.push(ctx.now());
                self.last_progress_at = ctx.now();
                self.stall_fenced = false;
            } else {
                i += 1;
            }
        }
        self.reap_chases(ctx);
        self.reap_writes(ctx);
        self.watchdog_check(ctx);
        if self.completed >= self.target_ops && self.done_at.is_none() {
            self.done_at = Some(ctx.now());
            if self.stop_when_done {
                ctx.stop();
            }
        }
    }

    /// Reap completed dependent reads and check each against the chase
    /// oracle: status Ok, exactly one hop, and the final block fetched from
    /// *precisely* the pointer the latest preceding slot write installed —
    /// a torn or stale pointer (the conflict gate letting a chase overtake
    /// a staged write, or observe a half-flushed word) fails here.
    fn reap_chases(&mut self, ctx: &mut Ctx) {
        let mut i = 0;
        while i < self.outstanding_chases.len() {
            let (h, t0, expect) = self.outstanding_chases[i];
            if !h.id.completed_by(self.channel.progress(OpType::Read)) {
                i += 1;
                continue;
            }
            let lat = ctx.now().since(t0);
            self.latency.record(lat.nanos());
            let out = self
                .channel
                .take_chase_response(&h)
                .expect("completed chase");
            // Every record stamp is non-zero, so the block fetched by the
            // single hop always embeds a non-null "next" word: the status
            // is the chain-continues signal, payload attached.
            assert_eq!(
                out.status.status,
                ChaseStatus::BudgetExhausted,
                "chase {:?} expecting pointer {expect:#x} must resolve its one hop",
                h.id
            );
            assert_eq!(out.status.hops, 1, "ReadIndirect is exactly one hop");
            assert_eq!(
                out.status.final_addr,
                expect & CHASE_PTR_MASK,
                "chase {:?} must observe the latest preceding pointer write",
                h.id
            );
            if self.verify_data {
                let stamp = (expect / 64).to_le_bytes();
                assert_eq!(
                    &out.data[..8],
                    &stamp[..],
                    "chase {:?} fetched wrong bytes at {expect:#x}",
                    h.id
                );
            }
            self.outstanding_chases.swap_remove(i);
            self.completed += 1;
            self.chases_completed += 1;
            self.completion_times.push(ctx.now());
            self.last_progress_at = ctx.now();
            self.stall_fenced = false;
        }
    }

    /// Reap completed slot writes (exactly-once via the write progress
    /// counter, like reads).
    fn reap_writes(&mut self, ctx: &mut Ctx) {
        let wp = self.channel.progress(OpType::Write);
        let mut i = 0;
        while i < self.outstanding_writes.len() {
            if self.outstanding_writes[i].completed_by(wp) {
                self.outstanding_writes.swap_remove(i);
                self.completed += 1;
                self.completion_times.push(ctx.now());
                self.last_progress_at = ctx.now();
                self.stall_fenced = false;
            } else {
                i += 1;
            }
        }
    }

    /// The client-side liveness watchdog: with requests outstanding and no
    /// completion for `watchdog`, the engine is presumed unreachable (dead
    /// *or* partitioned — from here they look identical) and the client
    /// raises the fence word so a standby can adopt at the fence epoch.
    fn watchdog_check(&mut self, ctx: &mut Ctx) {
        let Some(timeout) = self.watchdog else { return };
        if self.outstanding.is_empty() || self.stall_fenced {
            return;
        }
        if ctx.now().since(self.last_progress_at) >= timeout {
            let epoch = self.channel.fence_engine();
            self.stall_fenced = true;
            let (now, node) = (ctx.now(), ctx.node_id().0 as u16);
            ctx.trace().event(
                now,
                node,
                telemetry::EventKind::FenceRaised,
                0,
                epoch,
                self.outstanding.len() as u64,
            );
        }
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The client channel (stats and progress inspection).
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Direct NIC access (diagnostics).
    pub fn nic(&self) -> &SimNic {
        &self.nic
    }

    /// Outstanding client requests (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Latency of the first completed operation, ns (0 if none yet).
    pub fn first_latency_ns(&self) -> u64 {
        self.first_latency.unwrap_or(0)
    }

    /// The tail-latency SLO watchdog, when the rig enabled one (for
    /// exporting its window quantiles after a run).
    pub fn tail_watchdog(&self) -> Option<&SloWatchdog> {
        self.tail_slo.as_ref()
    }
}

impl Node for CowbirdClientNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start_after, TAG_POLL);
        ctx.set_timer(Duration::from_micros(100), TAG_NIC_TICK);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        // Engine traffic against the channel region: NIC-only, no host CPU.
        self.nic_out.clear();
        self.nic
            .handle_packet_into(&pkt, ctx.now(), &mut self.nic_out);
        for (dst, roce) in self.nic_out.emit.drain(..) {
            ctx.send(self.nic.make_packet(ctx.node_id(), dst, &roce, 1));
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx) {
        match tag {
            TAG_POLL => {
                self.reap(ctx);
                self.issue(ctx);
                if self.completed < self.target_ops {
                    ctx.set_timer(self.poll_interval, TAG_POLL);
                }
            }
            TAG_NIC_TICK => {
                for (dst, roce) in self.nic.tick(ctx.now()) {
                    ctx.send(self.nic.make_packet(ctx.node_id(), dst, &roce, 1));
                }
                ctx.set_timer(Duration::from_micros(100), TAG_NIC_TICK);
            }
            _ => {}
        }
    }
}

/// Configuration for the standard Cowbird rig.
pub struct CowbirdRig {
    pub seed: u64,
    pub record_size: u32,
    pub inflight: usize,
    pub target_ops: u64,
    pub engine_batch: usize,
    pub probe_interval: Duration,
    /// How often the client checks for completions (models the application
    /// interleaving polls with work).
    pub poll_interval: Duration,
    pub link: LinkParams,
    /// Per-link fault injection applies to every link when set.
    pub drop_probability: f64,
    /// Client liveness watchdog: fence the engine when no completion has
    /// arrived for this long while requests are outstanding.
    pub watchdog: Option<Duration>,
    /// Scatter-gather width for the engine's coalesced pool verbs: `0`
    /// keeps the variant default (16 for Spot, 1 for P4), `1` disables
    /// coalescing, larger values cap the SGE list per verb.
    pub coalesce_sge: usize,
    /// Channel ring sizing (the tail-latency artifact shrinks it to plant
    /// response-ring backpressure).
    pub layout: ChannelLayout,
    /// Flight-recorder hub to wire through the rig: the client channel and
    /// the engine core get virtual-clock recorders on nodes 0 and 1, so a
    /// run leaves a merged event timeline behind for span/waterfall
    /// analysis. `None` records nothing (the default; event recording is
    /// one branch per event but the rings are not free).
    pub trace: Option<Telemetry>,
    /// Tail-latency SLO watchdog parameters
    /// `(slo_p999_ns, min_samples, cooldown_samples)`; every completion is
    /// fed to [`SloWatchdog::observe`] and violations are collected on the
    /// client node (and recorded as [`EventKind::TailViolation`] when a
    /// trace hub is attached).
    pub tail_slo: Option<(u64, u64, u64)>,
    /// Replace the pure-read workload with the write → chase → read → read
    /// schedule: every 4th op rewrites a pool-side pointer word and the op
    /// right behind it dereferences that word with `ReadIndirect`, so the
    /// chase state machine races the staged-write conflict gate on every
    /// group. Implies per-op oracle checks on the chase responses.
    pub chase_race: bool,
}

impl Default for CowbirdRig {
    fn default() -> Self {
        CowbirdRig {
            seed: 1,
            record_size: 64,
            inflight: 1,
            target_ops: 500,
            engine_batch: 1,
            probe_interval: Duration::from_micros(2),
            poll_interval: Duration::from_nanos(250),
            link: LinkParams::rack_100g(),
            drop_probability: 0.0,
            watchdog: None,
            coalesce_sge: 0,
            layout: ChannelLayout::default_sizes(),
            trace: None,
            tail_slo: None,
            chase_race: false,
        }
    }
}

/// Directional link ids of the standard three-node topology, in the order
/// the rig connected them; fault scripts (outages, jitter) target these.
#[derive(Clone, Copy, Debug)]
pub struct RigLinks {
    /// compute → engine, engine → compute.
    pub compute_engine: (LinkId, LinkId),
    /// engine → pool, pool → engine.
    pub engine_pool: (LinkId, LinkId),
}

/// Build compute ↔ engine(switch) ↔ pool. Returns (sim, client node id,
/// engine node id).
pub fn build_cowbird_rig(cfg: CowbirdRig) -> (Sim, NodeId, NodeId) {
    build_cowbird_rig_with(cfg, Duration::ZERO, None)
}

/// [`build_cowbird_rig`] with an initial client idle period and an optional
/// adaptive probe policy `(idle interval, empty-probe threshold)`.
pub fn build_cowbird_rig_with(
    cfg: CowbirdRig,
    client_start_after: Duration,
    adaptive_probe: Option<(Duration, u32)>,
) -> (Sim, NodeId, NodeId) {
    let (sim, client, engine, _standby, _links) =
        build_rig_inner(cfg, client_start_after, adaptive_probe, None);
    (sim, client, engine)
}

/// [`build_cowbird_rig`] that also hands back the topology's [`RigLinks`]
/// so the caller can aim fault scripts at a specific hop (the tail-latency
/// artifact jitters the engine ↔ pool pair).
pub fn build_cowbird_rig_links(cfg: CowbirdRig) -> (Sim, NodeId, NodeId, RigLinks) {
    let (sim, client, engine, _standby, links) = build_rig_inner(cfg, Duration::ZERO, None, None);
    (sim, client, engine, links)
}

/// The failover rig: the standard topology plus a fourth node hosting a
/// standby engine wired to the same channel and pool over its own QPs. A
/// scheduled fault crashes the primary at `crash_at`; the standby activates
/// `takeover_delay` later (modelling detection + election), adopts the
/// channel from the red block, and resumes the workload. The client
/// additionally verifies every read payload, so a lost or duplicated
/// completion — or a wrong byte from re-execution — fails the run. Returns
/// `(sim, client, primary engine, standby engine)`.
pub fn build_cowbird_failover_rig(
    cfg: CowbirdRig,
    crash_at: Duration,
    takeover_delay: Duration,
) -> (Sim, NodeId, NodeId, NodeId) {
    let (sim, client, engine, standbys, _links) = build_rig_inner(
        cfg,
        Duration::ZERO,
        None,
        Some((crash_at, takeover_delay, FailoverFault::Crash, 1)),
    );
    (sim, client, engine, standbys[0])
}

/// The contested-election rig: like [`build_cowbird_failover_rig`], but with
/// *two* standby engines, both activating at `crash_at + takeover_delay`.
/// Each reads the red block and bids for the channel by compare-and-swapping
/// the engine-epoch word at the compute NIC; the NIC's atomic execution
/// arbitrates, so exactly one standby adopts and the other observes a lost
/// election and stays dormant. Returns
/// `(sim, client, primary engine, standby engines)`.
pub fn build_cowbird_multi_standby_rig(
    cfg: CowbirdRig,
    crash_at: Duration,
    takeover_delay: Duration,
) -> (Sim, NodeId, NodeId, Vec<NodeId>) {
    let (sim, client, engine, standbys, _links) = build_rig_inner(
        cfg,
        Duration::ZERO,
        None,
        Some((crash_at, takeover_delay, FailoverFault::Crash, 2)),
    );
    (sim, client, engine, standbys)
}

/// How the failover rig takes the primary engine out.
#[derive(Clone, Copy, Debug)]
enum FailoverFault {
    /// The primary node crashes outright (`NodeDown`).
    Crash,
    /// *Partial partition*: the primary stays up and keeps its pool links,
    /// but both directions of the compute ↔ engine pair go down over
    /// `[at, heal_at)`. From the client it is indistinguishable from a
    /// crash; from the pool the primary looks healthy — exactly the
    /// asymmetric failure the client-side fence word exists for.
    Partition { heal_at: Duration },
}

/// The partial-partition failover rig: like [`build_cowbird_failover_rig`],
/// but the primary is cut off from the *client only* (it still reaches the
/// memory pool) over `[partition_at, heal_at)`. The client's watchdog must
/// notice the stall and fence; the standby (activating `takeover_delay`
/// after the partition) adopts at the fence epoch; and when the partition
/// heals, the zombie primary observes the fence and stands down. The
/// client's watchdog defaults to a quarter of `takeover_delay` so the fence
/// lands before the standby adopts, as the fence-then-attach protocol
/// requires. Returns `(sim, client, primary engine, standby engine)`.
pub fn build_cowbird_partial_partition_rig(
    mut cfg: CowbirdRig,
    partition_at: Duration,
    heal_at: Duration,
    takeover_delay: Duration,
) -> (Sim, NodeId, NodeId, NodeId) {
    if cfg.watchdog.is_none() {
        cfg.watchdog = Some(Duration::from_nanos(takeover_delay.nanos() / 4));
    }
    let (sim, client, engine, standbys, _links) = build_rig_inner(
        cfg,
        Duration::ZERO,
        None,
        Some((
            partition_at,
            takeover_delay,
            FailoverFault::Partition { heal_at },
            1,
        )),
    );
    (sim, client, engine, standbys[0])
}

fn build_rig_inner(
    cfg: CowbirdRig,
    client_start_after: Duration,
    adaptive_probe: Option<(Duration, u32)>,
    failover: Option<(Duration, Duration, FailoverFault, usize)>,
) -> (Sim, NodeId, NodeId, Vec<NodeId>, RigLinks) {
    let mut sim = Sim::new(cfg.seed);
    let compute_id = NodeId(0);
    let engine_id = NodeId(1);
    let pool_id = NodeId(2);

    let pool_span: u64 = 8 << 20;
    let pool_mem = Region::new(pool_span as usize);
    // Deterministic content.
    for i in 0..(pool_span / 64) {
        pool_mem.write(i * 64, &i.to_le_bytes()).unwrap();
    }
    let mut pool = PoolNode::new();
    let pool_rkey = pool.register(pool_mem);
    pool.create_qp(201, 102, engine_id);

    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: pool_span,
        },
    );

    let standby_count = failover.as_ref().map_or(0, |f| f.3);

    let layout = cfg.layout;
    let mut channel = Channel::new(0, layout, regions.clone());
    if let Some(hub) = &cfg.trace {
        channel.set_recorder(hub.recorder_virtual(0, "compute"));
    }
    let mut nic = SimNic::new();
    let channel_rkey = nic.register(channel.region().clone());
    nic.create_qp(QpConfig::new(301, 101), engine_id);
    nic.create_qp(QpConfig::new(302, 103), engine_id);
    // Standby k gets node id 3+k and QP numbers offset by 10k from the
    // first standby's (111/311, 113/312 on the client, 112/211 at the pool).
    for k in 0..standby_count {
        let o = 10 * k as u32;
        let sid = NodeId(3 + k as u32);
        nic.create_qp(QpConfig::new(311 + o, 111 + o), sid);
        nic.create_qp(QpConfig::new(312 + o, 113 + o), sid);
        pool.create_qp(211 + o, 112 + o, sid);
    }

    let client = CowbirdClientNode {
        nic,
        nic_out: NicOutput::default(),
        channel,
        record_size: cfg.record_size,
        inflight_target: cfg.inflight,
        target_ops: cfg.target_ops,
        issued: 0,
        completed: 0,
        outstanding: Vec::new(),
        pool_span,
        poll_interval: cfg.poll_interval,
        start_after: client_start_after,
        latency: Histogram::new(),
        first_latency: None,
        done_at: None,
        stop_when_done: true,
        verify_data: failover.is_some(),
        completion_times: Vec::new(),
        watchdog: cfg.watchdog,
        last_progress_at: Instant::ZERO,
        stall_fenced: false,
        tail_slo: cfg
            .tail_slo
            .map(|(slo, min_samples, cooldown)| SloWatchdog::new(slo, min_samples, cooldown)),
        tail_violations: Vec::new(),
        resp_scratch: Vec::new(),
        chase_race: cfg.chase_race,
        slot_ptr: vec![0; CHASE_SLOTS as usize],
        outstanding_chases: Vec::new(),
        outstanding_writes: Vec::new(),
        chases_completed: 0,
    };

    let mut engine = EngineNode::new();
    let mut variant = if cfg.engine_batch <= 1 {
        EngineConfig::p4(layout, regions)
    } else {
        EngineConfig::spot(layout, regions, cfg.engine_batch)
    };
    if let Some((idle, threshold)) = adaptive_probe {
        variant = variant.with_adaptive_probe(idle, threshold);
    }
    if cfg.coalesce_sge > 0 {
        variant = variant.with_coalesce_sge(cfg.coalesce_sge);
    }
    if let Some(hub) = &cfg.trace {
        variant = variant.with_recorder(hub.recorder_virtual(1, "engine"));
    }
    let variant = variant.with_probe_interval(cfg.probe_interval);
    engine.add_instance(
        variant.clone(),
        compute_id,
        pool_id,
        (101, 301, 102, 201, 103, 302),
        channel_rkey,
    );

    sim.add_node(Box::new(client));
    sim.add_node(Box::new(engine));
    sim.add_node(Box::new(pool));
    let link = cfg.link.clone().with_drop_probability(cfg.drop_probability);
    let (ce_fwd, ce_rev) = sim.connect(compute_id, engine_id, link.clone());
    let (ep_fwd, ep_rev) = sim.connect(engine_id, pool_id, link.clone());
    let links = RigLinks {
        compute_engine: (ce_fwd, ce_rev),
        engine_pool: (ep_fwd, ep_rev),
    };

    let mut standbys = Vec::new();
    if let Some((crash_at, takeover_delay, fault, count)) = failover {
        for k in 0..count {
            let o = 10 * k as u32;
            let mut standby = EngineNode::new();
            standby.add_standby_instance(
                variant.clone(),
                compute_id,
                pool_id,
                (111 + o, 311 + o, 112 + o, 211 + o, 113 + o, 312 + o),
                channel_rkey,
                crash_at + takeover_delay,
            );
            let id = sim.add_node(Box::new(standby));
            debug_assert_eq!(id, NodeId(3 + k as u32));
            sim.connect(compute_id, id, link.clone());
            sim.connect(id, pool_id, link.clone());
            standbys.push(id);
        }
        match fault {
            FailoverFault::Crash => sim.schedule_fault(
                Instant::ZERO + crash_at,
                simnet::fault::FaultEvent::NodeDown(engine_id),
            ),
            FailoverFault::Partition { heal_at } => {
                // Both directions of compute <-> engine; engine <-> pool
                // stays up (the "partial" in partial partition).
                let script = simnet::fault::FaultScript::new().partial_partition(
                    &[ce_fwd, ce_rev],
                    Instant::ZERO + crash_at,
                    Instant::ZERO + heal_at,
                );
                sim.apply_fault_script(&script);
            }
        }
    }
    (sim, compute_id, engine_id, standbys, links)
}

/// Export every stats surface of a finished rig run into the process-wide
/// metrics registry ([`telemetry::metrics::global`]) under a `run` label:
/// client channel counters and latency histogram, plus NIC/QP counters for
/// both the compute and engine nodes. Experiments snapshot the registry
/// around a run and serialize the diff as `metrics.json`.
pub fn export_rig_metrics(sim: &Sim, client_id: NodeId, engine_id: NodeId, run: &str) {
    let reg = telemetry::metrics::global();
    let client: &CowbirdClientNode = sim.node_ref(client_id);
    let compute_labels = [("run", run), ("node", "compute")];
    client.channel().stats.export(reg, &compute_labels);
    client.channel().export_engine_telemetry(reg);
    client.nic().export_metrics(reg, &compute_labels);
    reg.hist_merge(
        "cowbird.client.latency_ns",
        &[("run", run)],
        &client.latency,
    );
    let engine: &EngineNode = sim.node_ref(engine_id);
    let engine_labels = [("run", run), ("node", "engine")];
    engine.core(0).stats.export(reg, &engine_labels);
    engine.nic().export_metrics(reg, &engine_labels);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_completes_target_ops() {
        let (mut sim, client_id, _) = build_cowbird_rig(CowbirdRig {
            target_ops: 100,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(client_id);
        assert_eq!(client.completed(), 100);
        assert!(client.latency.median() > 0);
    }

    #[test]
    fn export_rig_metrics_populates_the_global_registry() {
        let (mut sim, client_id, engine_id) = build_cowbird_rig(CowbirdRig {
            target_ops: 50,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        let before = telemetry::metrics::global().snapshot();
        export_rig_metrics(&sim, client_id, engine_id, "harness_test");
        let diff = telemetry::metrics::global().snapshot().diff(&before);
        assert_eq!(
            diff.counters
                .get("cowbird.client.reads_issued{node=compute,run=harness_test}"),
            Some(&50)
        );
        assert!(diff
            .counters
            .keys()
            .any(|k| k.starts_with("cowbird.engine.probes_sent")));
        assert_eq!(
            diff.hists
                .get("cowbird.client.latency_ns{run=harness_test}")
                .unwrap()
                .count,
            50
        );
        telemetry::json::validate(&diff.to_json()).unwrap();
    }

    #[test]
    fn rig_survives_packet_loss() {
        let (mut sim, client_id, _) = build_cowbird_rig(CowbirdRig {
            target_ops: 60,
            drop_probability: 0.01,
            seed: 3,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(200).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(client_id);
        assert_eq!(client.completed(), 60, "GBN must recover all ops");
    }

    #[test]
    fn failover_rig_completes_through_crash_exactly_once() {
        let (mut sim, cid, eid, sid) = build_cowbird_failover_rig(
            CowbirdRig {
                seed: 26,
                target_ops: 300,
                inflight: 8,
                engine_batch: 8,
                ..Default::default()
            },
            Duration::from_micros(50),
            Duration::from_micros(200),
        );
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        assert!(sim.node_is_down(eid));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        // Exactly once: every issued request completed, and the progress
        // counter equals the issue count (a duplicate would overshoot it, a
        // loss would stall it). Payloads were verified on the fly.
        assert_eq!(client.completed(), 300);
        assert_eq!(client.issued(), 300);
        assert_eq!(client.channel().progress(cowbird::reqid::OpType::Read), 300);
        assert_eq!(client.channel().stats.engine_takeovers, 1);
        let standby: &EngineNode = sim.node_ref(sid);
        assert_eq!(standby.core(0).stats.adoptions, 1);
        // The timeline straddles the outage: some ops before the crash, the
        // rest after the standby adopted.
        let crash = Instant(Duration::from_micros(50).nanos());
        assert!(client.completion_times.first().unwrap() < &crash);
        assert!(client.completion_times.last().unwrap() > &crash);
    }

    #[test]
    fn two_standbys_elect_exactly_one_leader() {
        // Both standbys activate at the same instant and bid for the channel
        // with a compare-and-swap on the engine-epoch word. The compute NIC
        // executes the atomics in arrival order, so exactly one wins, adopts,
        // and finishes the workload; the loser observes a lost election and
        // stays dormant at its configured epoch.
        let (mut sim, cid, eid, sids) = build_cowbird_multi_standby_rig(
            CowbirdRig {
                seed: 27,
                target_ops: 300,
                inflight: 8,
                engine_batch: 8,
                ..Default::default()
            },
            Duration::from_micros(50),
            Duration::from_micros(200),
        );
        assert_eq!(sids.len(), 2);
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        assert!(sim.node_is_down(eid));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        // Exactly once across the contested takeover, payloads verified.
        assert_eq!(client.completed(), 300);
        assert_eq!(client.issued(), 300);
        assert_eq!(client.channel().progress(cowbird::reqid::OpType::Read), 300);
        assert_eq!(client.channel().stats.engine_takeovers, 1);
        let (won, lost, adoptions): (u64, u64, u64) = sids
            .iter()
            .map(|&sid| {
                let s: &EngineNode = sim.node_ref(sid);
                let st = &s.core(0).stats;
                (st.elections_won, st.elections_lost, st.adoptions)
            })
            .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
        assert_eq!(won, 1, "exactly one standby may win the election");
        assert_eq!(lost, 1, "the other standby must observe the loss");
        assert_eq!(adoptions, 1, "only the winner adopts the channel");
        // The loser never advanced past its configured epoch.
        let dormant = sids.iter().any(|&sid| {
            let s: &EngineNode = sim.node_ref(sid);
            s.core(0).stats.adoptions == 0 && s.core(0).epoch() == 0
        });
        assert!(dormant, "the losing standby must stay dormant");
    }

    #[test]
    fn partial_partition_fences_and_standby_takes_over() {
        // Partition the primary from the client (only) at 50 us; heal at
        // 150 us; standby activates at 50 + 200 = 250 us. The watchdog
        // (takeover_delay / 4 = 50 us) fences around 100 us, the healed
        // zombie observes the fence before the standby adopts, and the
        // workload completes exactly once on the standby.
        let (mut sim, cid, eid, sid) = build_cowbird_partial_partition_rig(
            CowbirdRig {
                seed: 27,
                target_ops: 300,
                inflight: 8,
                engine_batch: 8,
                ..Default::default()
            },
            Duration::from_micros(50),
            Duration::from_micros(150),
            Duration::from_micros(200),
        );
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        // The primary never crashed — it only lost its client-facing links.
        assert!(!sim.node_is_down(eid));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        assert!(
            client.channel().stats.fences >= 1,
            "watchdog must fence the unreachable engine"
        );
        // Exactly once across the takeover, with payloads verified.
        assert_eq!(client.completed(), 300);
        assert_eq!(client.issued(), 300);
        assert_eq!(client.channel().progress(cowbird::reqid::OpType::Read), 300);
        let standby: &EngineNode = sim.node_ref(sid);
        assert_eq!(standby.core(0).stats.adoptions, 1);
        // Fence-then-attach: the standby adopts at the blessed fence epoch,
        // so the client sees no *unfenced* takeover.
        assert_eq!(client.channel().stats.engine_takeovers, 0);
        // The healed zombie probed the green block, saw the fence word above
        // its epoch, and stood down.
        let primary: &EngineNode = sim.node_ref(eid);
        assert!(primary.core(0).stats.fenced, "zombie must stand down");
    }

    #[test]
    fn batched_rig_uses_fewer_compute_writes() {
        let run = |batch: usize| {
            let (mut sim, _c, engine_id) = build_cowbird_rig(CowbirdRig {
                target_ops: 200,
                inflight: 32,
                engine_batch: batch,
                ..Default::default()
            });
            sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
            let engine: &EngineNode = sim.node_ref(engine_id);
            engine.core(0).stats.batches_flushed
        };
        let unbatched = run(1);
        let batched = run(16);
        assert!(
            batched < unbatched,
            "batched {batched} vs unbatched {unbatched}"
        );
    }
}

//! Packet-level rigs: a Cowbird compute-node client for `simnet`, and the
//! standard three-node topology (compute ↔ engine ↔ pool) used by the
//! latency and validation experiments.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::core::EngineConfig;
use cowbird_engine::sim::{EngineNode, PoolNode};
use rdma::mem::Region;
use rdma::qp::QpConfig;
use rdma::sim::{to_sim_packet, SimNic};
use simnet::link::LinkParams;
use simnet::sim::{Ctx, Node, NodeId, Packet, Sim};
use simnet::stats::Histogram;
use simnet::time::{Duration, Instant};

const TAG_POLL: u64 = 1;
const TAG_NIC_TICK: u64 = 2;

/// A compute node running the Cowbird client library: issues reads of
/// `record_size` bytes, keeps `inflight` outstanding, and measures
/// issue-to-completion latency. Its NIC serves the offload engine's RDMA
/// traffic without any "CPU" involvement (no simulated cost — that is the
/// whole point).
pub struct CowbirdClientNode {
    nic: SimNic,
    channel: Channel,
    record_size: u32,
    inflight_target: usize,
    target_ops: u64,
    issued: u64,
    completed: u64,
    outstanding: Vec<(cowbird::channel::ReadHandle, Instant)>,
    pool_span: u64,
    poll_interval: Duration,
    /// Delay before the first issue (models an idle application phase; used
    /// by the adaptive-probe ablation).
    start_after: Duration,
    pub latency: Histogram,
    /// Latency of the very first completed op (ns).
    first_latency: Option<u64>,
    pub done_at: Option<Instant>,
    pub stop_when_done: bool,
}

impl CowbirdClientNode {
    fn issue(&mut self, ctx: &mut Ctx) {
        while self.outstanding.len() < self.inflight_target && self.issued < self.target_ops {
            let max_rec = self.pool_span / self.record_size.max(1) as u64;
            let off = ctx.rng().next_below(max_rec) * self.record_size as u64;
            match self.channel.async_read(1, off, self.record_size) {
                Ok(h) => {
                    self.outstanding.push((h, ctx.now()));
                    self.issued += 1;
                }
                Err(e) if e.is_retryable() => break, // poll will drain space
                Err(e) => panic!("issue failed: {e}"),
            }
        }
    }

    fn reap(&mut self, ctx: &mut Ctx) {
        self.channel.refresh();
        let mut i = 0;
        while i < self.outstanding.len() {
            let (h, t0) = self.outstanding[i];
            if h.id
                .completed_by(self.channel.progress(cowbird::reqid::OpType::Read))
            {
                let lat = ctx.now().since(t0);
                self.first_latency.get_or_insert(lat.nanos());
                self.latency.record_duration(lat);
                self.channel.take_response(&h).expect("completed read");
                self.outstanding.swap_remove(i);
                self.completed += 1;
            } else {
                i += 1;
            }
        }
        if self.completed >= self.target_ops && self.done_at.is_none() {
            self.done_at = Some(ctx.now());
            if self.stop_when_done {
                ctx.stop();
            }
        }
    }

    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Direct NIC access (diagnostics).
    pub fn nic(&self) -> &SimNic {
        &self.nic
    }

    /// Outstanding client requests (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Latency of the first completed operation, ns (0 if none yet).
    pub fn first_latency_ns(&self) -> u64 {
        self.first_latency.unwrap_or(0)
    }
}

impl Node for CowbirdClientNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.start_after, TAG_POLL);
        ctx.set_timer(Duration::from_micros(100), TAG_NIC_TICK);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx) {
        // Engine traffic against the channel region: NIC-only, no host CPU.
        let out = self.nic.handle_packet(&pkt, ctx.now());
        for (dst, roce) in out.emit {
            ctx.send(to_sim_packet(ctx.node_id(), dst, &roce, 1));
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx) {
        match tag {
            TAG_POLL => {
                self.reap(ctx);
                self.issue(ctx);
                if self.completed < self.target_ops {
                    ctx.set_timer(self.poll_interval, TAG_POLL);
                }
            }
            TAG_NIC_TICK => {
                for (dst, roce) in self.nic.tick(ctx.now()) {
                    ctx.send(to_sim_packet(ctx.node_id(), dst, &roce, 1));
                }
                ctx.set_timer(Duration::from_micros(100), TAG_NIC_TICK);
            }
            _ => {}
        }
    }
}

/// Configuration for the standard Cowbird rig.
pub struct CowbirdRig {
    pub seed: u64,
    pub record_size: u32,
    pub inflight: usize,
    pub target_ops: u64,
    pub engine_batch: usize,
    pub probe_interval: Duration,
    /// How often the client checks for completions (models the application
    /// interleaving polls with work).
    pub poll_interval: Duration,
    pub link: LinkParams,
    /// Per-link fault injection applies to every link when set.
    pub drop_probability: f64,
}

impl Default for CowbirdRig {
    fn default() -> Self {
        CowbirdRig {
            seed: 1,
            record_size: 64,
            inflight: 1,
            target_ops: 500,
            engine_batch: 1,
            probe_interval: Duration::from_micros(2),
            poll_interval: Duration::from_nanos(250),
            link: LinkParams::rack_100g(),
            drop_probability: 0.0,
        }
    }
}

/// Build compute ↔ engine(switch) ↔ pool. Returns (sim, client node id,
/// engine node id).
pub fn build_cowbird_rig(cfg: CowbirdRig) -> (Sim, NodeId, NodeId) {
    build_cowbird_rig_with(cfg, Duration::ZERO, None)
}

/// [`build_cowbird_rig`] with an initial client idle period and an optional
/// adaptive probe policy `(idle interval, empty-probe threshold)`.
pub fn build_cowbird_rig_with(
    cfg: CowbirdRig,
    client_start_after: Duration,
    adaptive_probe: Option<(Duration, u32)>,
) -> (Sim, NodeId, NodeId) {
    let mut sim = Sim::new(cfg.seed);
    let compute_id = NodeId(0);
    let engine_id = NodeId(1);
    let pool_id = NodeId(2);

    let pool_span: u64 = 8 << 20;
    let pool_mem = Region::new(pool_span as usize);
    // Deterministic content.
    for i in 0..(pool_span / 64) {
        pool_mem.write(i * 64, &i.to_le_bytes()).unwrap();
    }
    let mut pool = PoolNode::new();
    let pool_rkey = pool.register(pool_mem);
    pool.create_qp(201, 102, engine_id);

    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: pool_span,
        },
    );

    let layout = ChannelLayout::default_sizes();
    let channel = Channel::new(0, layout, regions.clone());
    let mut nic = SimNic::new();
    let channel_rkey = nic.register(channel.region().clone());
    nic.create_qp(QpConfig::new(301, 101), engine_id);
    nic.create_qp(QpConfig::new(302, 103), engine_id);

    let client = CowbirdClientNode {
        nic,
        channel,
        record_size: cfg.record_size,
        inflight_target: cfg.inflight,
        target_ops: cfg.target_ops,
        issued: 0,
        completed: 0,
        outstanding: Vec::new(),
        pool_span,
        poll_interval: cfg.poll_interval,
        start_after: client_start_after,
        latency: Histogram::new(),
        first_latency: None,
        done_at: None,
        stop_when_done: true,
    };

    let mut engine = EngineNode::new();
    let mut variant = if cfg.engine_batch <= 1 {
        EngineConfig::p4(layout, regions)
    } else {
        EngineConfig::spot(layout, regions, cfg.engine_batch)
    };
    if let Some((idle, threshold)) = adaptive_probe {
        variant = variant.with_adaptive_probe(idle, threshold);
    }
    engine.add_instance(
        variant.with_probe_interval(cfg.probe_interval),
        compute_id,
        pool_id,
        (101, 301, 102, 201, 103, 302),
        channel_rkey,
    );

    sim.add_node(Box::new(client));
    sim.add_node(Box::new(engine));
    sim.add_node(Box::new(pool));
    let link = cfg.link.clone().with_drop_probability(cfg.drop_probability);
    sim.connect(compute_id, engine_id, link.clone());
    sim.connect(engine_id, pool_id, link);
    (sim, compute_id, engine_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rig_completes_target_ops() {
        let (mut sim, client_id, _) = build_cowbird_rig(CowbirdRig {
            target_ops: 100,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(client_id);
        assert_eq!(client.completed(), 100);
        assert!(client.latency.median() > 0);
    }

    #[test]
    fn rig_survives_packet_loss() {
        let (mut sim, client_id, _) = build_cowbird_rig(CowbirdRig {
            target_ops: 60,
            drop_probability: 0.01,
            seed: 3,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(200).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(client_id);
        assert_eq!(client.completed(), 60, "GBN must recover all ops");
    }

    #[test]
    fn batched_rig_uses_fewer_compute_writes() {
        let run = |batch: usize| {
            let (mut sim, _c, engine_id) = build_cowbird_rig(CowbirdRig {
                target_ops: 200,
                inflight: 32,
                engine_batch: batch,
                ..Default::default()
            });
            sim.run_until(Some(Instant(Duration::from_millis(50).nanos())));
            let engine: &EngineNode = sim.node_ref(engine_id);
            engine.core(0).stats.batches_flushed
        };
        let unbatched = run(1);
        let batched = run(16);
        assert!(batched < unbatched, "batched {batched} vs unbatched {unbatched}");
    }
}

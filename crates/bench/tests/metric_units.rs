//! Registry-wide metric units audit (the enforcement half of
//! `telemetry::units`).
//!
//! Runs a small end-to-end rig with every metrics surface enabled — channel
//! stats, engine stats, the in-band telemetry readback, and the tail
//! watchdog — exports them all into the global registry, and asserts that
//! every `cowbird.*` name that showed up resolves to a documented unit via
//! the suffix convention or the frozen legacy allowlist. A new metric with
//! no unit suffix fails here, naming the offender.

use experiments::harness::{
    build_cowbird_rig_links, export_rig_metrics, CowbirdClientNode, CowbirdRig,
};
use simnet::time::{Duration, Instant};
use telemetry::Telemetry;

#[test]
fn every_exported_cowbird_metric_has_a_documented_unit() {
    let hub = Telemetry::new(1 << 14);
    let cfg = CowbirdRig {
        seed: 42,
        target_ops: 300,
        inflight: 8,
        engine_batch: 8,
        probe_interval: Duration::from_micros(2),
        poll_interval: Duration::from_nanos(250),
        trace: Some(hub),
        // Low SLO so the watchdog fires and its surfaces register too.
        tail_slo: Some((2_000, 32, 64)),
        ..Default::default()
    };
    let (mut sim, client_id, engine_id, _links) = build_cowbird_rig_links(cfg);
    sim.run_until(Some(Instant(Duration::from_millis(100).nanos())));

    let reg = telemetry::metrics::global();
    let before = reg.snapshot();
    export_rig_metrics(&sim, client_id, engine_id, "units_audit");
    let client: &CowbirdClientNode = sim.node_ref(client_id);
    assert_eq!(client.completed(), 300, "audit rig run incomplete");
    if let Some(wd) = client.tail_watchdog() {
        wd.export(reg, &[("run", "units_audit")]);
    }
    let diff = reg.snapshot().diff(&before);

    let keys: Vec<String> = diff
        .counters
        .keys()
        .chain(diff.gauges.keys())
        .chain(diff.hists.keys())
        .cloned()
        .collect();
    assert!(
        keys.len() > 20,
        "expected a full export surface to audit, got {} keys",
        keys.len()
    );

    // The surfaces this PR added must actually be present in the audit set:
    // the scraped in-band readback and the watchdog's window quantiles.
    for needle in [
        "cowbird.engine.readback.sweeps_count",
        "cowbird.engine.readback.snapshot_seq",
        "cowbird.tail.p999_ns",
        "cowbird.tail.violations_count",
    ] {
        assert!(
            keys.iter().any(|k| k.starts_with(needle)),
            "expected {needle} in the exported set; keys: {keys:#?}"
        );
    }

    let offenders = telemetry::units::audit(keys.iter().map(|k| k.as_str()));
    assert!(
        offenders.is_empty(),
        "cowbird.* metrics without a documented unit (add a SUFFIX_UNITS \
         suffix; the NAME_UNITS allowlist is frozen): {offenders:#?}"
    );
}

//! Chase linearizability under loss × crash — dependent reads racing the
//! writes that install their pointers.
//!
//! The chase-race schedule (write slot → chase slot → read → read) makes
//! every `ReadIndirect` dereference a pointer word its own channel staged
//! one ring entry earlier. The conflict gate must therefore hold each
//! chase until the racing write commits, and takeover re-execution must
//! replay the pair in order — otherwise the chase observes a stale, torn,
//! or too-new pointer. The oracle is exact, not statistical: ring FIFO
//! plus slot-reuse distance (32 ops) exceeding the inflight window (8)
//! mean a chase must return *precisely* the pointer installed by the
//! latest preceding write to its slot, and the client asserts that (plus
//! the payload bytes at that pointer) on every completion, inside the sim.
//!
//! Swept across verb coalescing off / narrow / wide and the loss × crash
//! product of the failover rig, like the plain-read linearizability sweep.

use cowbird::reqid::OpType;
use cowbird_engine::sim::EngineNode;
use experiments::harness::{build_cowbird_failover_rig, CowbirdClientNode, CowbirdRig};
use proptest::prelude::*;
use simnet::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn chases_racing_writes_survive_loss_and_crash(
        seed in 1u64..10_000,
        drop_per_mille in 1u32..30,
        crash_us in 10u64..60,
        coalesce_sge in prop_oneof![Just(1usize), Just(8), Just(16)],
    ) {
        let (mut sim, cid, eid, sid) = build_cowbird_failover_rig(
            CowbirdRig {
                seed,
                target_ops: 200,
                inflight: 8,
                engine_batch: 8,
                coalesce_sge,
                drop_probability: drop_per_mille as f64 / 1000.0,
                chase_race: true,
                ..Default::default()
            },
            Duration::from_micros(crash_us),
            Duration::from_micros(200),
        );
        sim.run_until(Some(Instant(Duration::from_millis(500).nanos())));

        // 200 ops in write/chase/read/read groups: 50 writes, 50 chases,
        // 100 plain reads. Every chase was oracle-checked in-sim as it
        // completed; here we pin exactly-once accounting per op class.
        let client: &CowbirdClientNode = sim.node_ref(cid);
        prop_assert_eq!(client.completed(), 200, "every op must complete");
        prop_assert_eq!(client.issued(), 200);
        prop_assert_eq!(client.chases_completed, 50, "every chase completes once");
        prop_assert_eq!(client.channel().progress(OpType::Read), 150);
        prop_assert_eq!(client.channel().progress(OpType::Write), 50);

        // When the workload straddled the crash, the standby must have
        // adopted exactly once and finished the chase traffic itself.
        let crash = Instant(Duration::from_micros(crash_us).nanos());
        if client.completion_times.last().unwrap() > &crash {
            prop_assert!(sim.node_is_down(eid), "fault script must crash the primary");
            let standby: &EngineNode = sim.node_ref(sid);
            prop_assert_eq!(standby.core(0).stats.adoptions, 1, "standby adopts exactly once");
        }

        // The race must actually exercise the dependent-op machinery:
        // between primary and standby, every chase the client saw was
        // engine-executed (takeover re-execution can push the sum past 50).
        let primary: &EngineNode = sim.node_ref(eid);
        let standby: &EngineNode = sim.node_ref(sid);
        let executed =
            primary.core(0).stats.chases_executed + standby.core(0).stats.chases_executed;
        prop_assert!(
            executed >= 50,
            "all 50 chases must execute engine-side, saw {}",
            executed
        );
    }
}

//! Red-commit durability under packet loss × crash — the combined sweep.
//!
//! The ROADMAP's remaining failover item: loss sweeps and crash sweeps each
//! pass on their own, but the write-after-read barrier (and the red-commit
//! protocol behind it) must hold under their *product* — a retransmitting
//! fabric AND a primary that dies mid-flight. This proptest runs the
//! packet-level failover rig with every link lossy and the primary crashed
//! at a drawn instant; the standby adopts from the red block
//! `takeover_delay` later.
//!
//! Linearizability is checked three ways per case:
//!
//! * the client verifies every read payload against the pool's
//!   deterministic content as it completes (a stale or re-ordered byte from
//!   takeover re-execution panics inside the sim),
//! * exactly-once accounting: completions == issues == the channel's read
//!   progress counter (a duplicated completion overshoots, a lost one
//!   stalls),
//! * the standby adopted exactly once, at the crashed primary's epoch + 1.

use cowbird::reqid::OpType;
use cowbird_engine::sim::EngineNode;
use experiments::harness::{build_cowbird_failover_rig, CowbirdClientNode, CowbirdRig};
use proptest::prelude::*;
use simnet::time::{Duration, Instant};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn reads_survive_loss_and_crash_exactly_once(
        seed in 1u64..10_000,
        // 0.1% .. 3% independent drop probability on every link — enough
        // to force Go-Back-N replays through the takeover window.
        drop_per_mille in 1u32..30,
        // Crash the primary anywhere from "almost immediately" to mid-run.
        crash_us in 10u64..60,
        // Verb coalescing off / narrow / wide: chained WRs and
        // scatter-gather segments must replay through Go-Back-N and the
        // takeover window exactly like their one-verb-per-op equivalents.
        coalesce_sge in prop_oneof![Just(1usize), Just(8), Just(16)],
    ) {
        let (mut sim, cid, eid, sid) = build_cowbird_failover_rig(
            CowbirdRig {
                seed,
                target_ops: 200,
                inflight: 8,
                engine_batch: 8,
                coalesce_sge,
                drop_probability: drop_per_mille as f64 / 1000.0,
                ..Default::default()
            },
            Duration::from_micros(crash_us),
            Duration::from_micros(200),
        );
        // Generous virtual horizon: lossy links retransmit on GBN timeouts,
        // so a run can take far longer than the lossless baseline. The sim
        // stops itself the moment the client completes its target.
        sim.run_until(Some(Instant(Duration::from_millis(500).nanos())));

        // Exactly-once, unconditionally: completions == issues == the
        // channel's progress counter, with every payload already verified
        // in-sim against the pool's deterministic content.
        let client: &CowbirdClientNode = sim.node_ref(cid);
        prop_assert_eq!(client.completed(), 200, "every read must complete");
        prop_assert_eq!(client.issued(), 200);
        prop_assert_eq!(client.channel().progress(OpType::Read), 200);

        // When the workload straddled the crash (the overwhelmingly common
        // draw — a rare fast run that finishes before `crash_us` degenerates
        // to a pure-loss case and proves nothing extra), the primary must be
        // down and the standby must have adopted exactly once.
        let crash = Instant(Duration::from_micros(crash_us).nanos());
        if client.completion_times.last().unwrap() > &crash {
            prop_assert!(sim.node_is_down(eid), "fault script must crash the primary");
            let standby: &EngineNode = sim.node_ref(sid);
            prop_assert_eq!(standby.core(0).stats.adoptions, 1, "standby adopts exactly once");
        }
    }
}

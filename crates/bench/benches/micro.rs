//! Criterion micro-benchmarks of the hot paths the paper's argument rests
//! on: the Cowbird client issue/poll path (which must be a few tens of
//! nanoseconds for the whole design to make sense), the request-id and wire
//! codecs, ring reservation, and the workload generators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cowbird::channel::Channel;
use cowbird::layout::{ChannelLayout, RED_META_HEAD, RED_READ_PROGRESS, RED_WRITE_PROGRESS};
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird::reqid::{OpType, ReqId};
use rdma::wire::RocePacket;
use simnet::rng::Rng;
use workloads::zipf::ZipfSampler;

fn regions() -> RegionMap {
    let mut m = RegionMap::new();
    m.insert(
        1,
        RemoteRegion {
            rkey: 1,
            base: 0,
            size: 1 << 30,
        },
    );
    m
}

/// The headline number: a Cowbird `async_read` is a handful of local
/// stores. (Compare against Figure 2's ~350 ns RDMA post.)
fn bench_issue_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("client_issue");
    g.bench_function("async_read", |b| {
        b.iter_batched_ref(
            || Channel::new(0, ChannelLayout::default_sizes(), regions()),
            |ch| {
                // Issue as many as the ring holds; amortized per-op cost.
                for i in 0..1000u64 {
                    black_box(ch.async_read(1, i * 64, 64).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("async_write_64B", |b| {
        let payload = [7u8; 64];
        b.iter_batched_ref(
            || Channel::new(0, ChannelLayout::default_sizes(), regions()),
            |ch| {
                for i in 0..1000u64 {
                    black_box(ch.async_write(1, i * 64, &payload).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// The poll path: a refresh is three acquire loads plus queue pops.
fn bench_poll_path(c: &mut Criterion) {
    let mut ch = Channel::new(0, ChannelLayout::default_sizes(), regions());
    let region = ch.region().clone();
    let h = ch.async_read(1, 0, 64).unwrap();
    region.store_u64(RED_META_HEAD, 1, std::sync::atomic::Ordering::Release);
    region.store_u64(RED_READ_PROGRESS, 1, std::sync::atomic::Ordering::Release);
    region.store_u64(RED_WRITE_PROGRESS, 0, std::sync::atomic::Ordering::Release);
    c.bench_function("client_poll/refresh_and_check", |b| {
        b.iter(|| {
            ch.refresh();
            black_box(h.id.completed_by(ch.progress(OpType::Read)))
        })
    });
}

fn bench_reqid(c: &mut Criterion) {
    c.bench_function("reqid/encode_decode", |b| {
        b.iter(|| {
            let id = ReqId::new(OpType::Write, black_box(17), black_box(123456));
            black_box((id.op(), id.channel(), id.seq(), id.completed_by(200000)))
        })
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let pkt = RocePacket::write_only(7, 42, 0x1000, 3, vec![0xAB; 256]);
    let bytes = pkt.encode();
    let mut g = c.benchmark_group("wire");
    g.bench_function("encode_write_256B", |b| b.iter(|| black_box(pkt.encode())));
    g.bench_function("parse_write_256B", |b| {
        b.iter(|| black_box(RocePacket::parse(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let z = ZipfSampler::new(250_000_000, 0.99);
    let mut rng = Rng::new(1);
    c.bench_function("zipf/sample_250M", |b| {
        b.iter(|| black_box(z.sample_scrambled(&mut rng)))
    });
}

fn bench_kvstore(c: &mut Criterion) {
    use kvstore::{FasterKv, LocalMemoryDevice, StoreConfig};
    let kv = FasterKv::new(
        StoreConfig {
            memory_per_shard: 8 << 20,
            ..Default::default()
        },
        vec![LocalMemoryDevice::new()],
    );
    for k in 0..100_000u64 {
        kv.upsert(k, &k.to_le_bytes());
    }
    let mut rng = Rng::new(2);
    let mut g = c.benchmark_group("kvstore");
    g.bench_function("read_hot", |b| {
        b.iter(|| {
            let k = rng.next_below(100_000);
            black_box(kv.read(black_box(k)))
        })
    });
    g.bench_function("upsert_64B", |b| {
        let v = [9u8; 64];
        b.iter(|| {
            let k = rng.next_below(100_000);
            kv.upsert(black_box(k), &v)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_issue_path, bench_poll_path, bench_reqid, bench_wire_codec, bench_zipf, bench_kvstore
);
criterion_main!(benches);

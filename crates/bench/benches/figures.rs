//! Regenerates every table and figure of the paper and prints them.
//!
//! Run all:            cargo bench --bench figures
//! Run one artifact:   cargo bench --bench figures -- fig08
//! (matches on the artifact id, case-insensitive)

use experiments::experiments;

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let start = std::time::Instant::now();
    let tables = experiments::all();
    let mut shown = 0;
    for t in &tables {
        let key =
            t.id.to_lowercase()
                .replace(' ', "")
                .replace("figure", "fig");
        if filter.is_empty() || filter.iter().any(|f| key.contains(f)) {
            println!("{t}");
            shown += 1;
        }
    }
    eprintln!(
        "[{} artifact(s) regenerated in {:.1}s]",
        shown,
        start.elapsed().as_secs_f64()
    );
}

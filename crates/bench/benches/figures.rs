//! Regenerates tables and figures of the paper and prints them.
//!
//! Run all:            cargo bench --bench figures
//! Run one artifact:   cargo bench --bench figures -- fig08
//! (matches on the artifact key, case-insensitive)
//!
//! Each selected artifact runs inside a metrics-registry snapshot pair; the
//! diff — what that run alone recorded — is written to
//! `target/metrics/<key>.metrics.json` (override the directory with
//! `$COWBIRD_METRICS_DIR`).

use experiments::experiments::artifacts;
use experiments::report::write_metrics_json;

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let start = std::time::Instant::now();
    let reg = telemetry::metrics::global();
    let mut shown = 0;
    for (key, run) in artifacts() {
        if !filter.is_empty() && !filter.iter().any(|f| key.contains(f.as_str())) {
            continue;
        }
        let before = reg.snapshot();
        let tables = run();
        let metrics = reg.snapshot().diff(&before);
        for t in &tables {
            println!("{t}");
            shown += 1;
        }
        if !metrics.is_empty() {
            match write_metrics_json(key, &metrics) {
                Ok(path) => eprintln!("[{key}: metrics written to {}]", path.display()),
                Err(e) => eprintln!("[{key}: metrics write failed: {e}]"),
            }
        }
    }
    eprintln!(
        "[{} artifact(s) regenerated in {:.1}s]",
        shown,
        start.elapsed().as_secs_f64()
    );
}

//! Regenerates tables and figures of the paper and prints them.
//!
//! Run all:            cargo bench --bench figures
//! Run one artifact:   cargo bench --bench figures -- fig08
//! (matches on the artifact key, case-insensitive)
//!
//! Each selected artifact runs inside a metrics-registry snapshot pair; the
//! diff — what that run alone recorded — is written to
//! `target/metrics/<key>.metrics.json` (override the directory with
//! `$COWBIRD_METRICS_DIR`). A filter that selects nothing is an error, not
//! a silently green no-op — CI smoke jobs rely on that.
//!
//! Every run also appends a bench-trajectory entry `BENCH_<gitsha>.json`
//! at the repo root (headline metrics per artifact) and warns when a
//! metric moved beyond `$COWBIRD_BENCH_TOL` (default 25%) against the
//! previous entry.

use experiments::experiments::artifacts;
use experiments::report::{compare_bench_trajectory, write_bench_trajectory, write_metrics_json};

/// Count allocations so `sim_throughput` can report allocs-per-event and
/// the attribution report can show per-phase allocation rates.
#[global_allocator]
static ALLOC: telemetry::profile::TallyAlloc = telemetry::profile::TallyAlloc;

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let start = std::time::Instant::now();
    let reg = telemetry::metrics::global();
    let mut shown = 0;
    let mut matched = 0;
    let mut runs: Vec<(String, telemetry::MetricsSnapshot)> = Vec::new();
    for (key, run) in artifacts() {
        if !filter.is_empty() && !filter.iter().any(|f| key.contains(f.as_str())) {
            continue;
        }
        matched += 1;
        let before = reg.snapshot();
        let tables = run();
        let metrics = reg.snapshot().diff(&before);
        for t in &tables {
            println!("{t}");
            shown += 1;
        }
        if !metrics.is_empty() {
            match write_metrics_json(key, &metrics) {
                Ok(path) => eprintln!("[{key}: metrics written to {}]", path.display()),
                Err(e) => eprintln!("[{key}: metrics write failed: {e}]"),
            }
            runs.push((key.to_string(), metrics));
        }
    }
    if matched == 0 {
        eprintln!(
            "error: no artifact matches filter {:?} (keys: {})",
            filter,
            artifacts()
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
    if !runs.is_empty() {
        match write_bench_trajectory(&runs) {
            Ok(path) => {
                eprintln!("[bench trajectory written to {}]", path.display());
                match compare_bench_trajectory(&path) {
                    Ok(warnings) => {
                        for w in warnings {
                            eprintln!("[bench-trajectory warning] {w}");
                        }
                    }
                    Err(e) => eprintln!("[bench-trajectory compare failed: {e}]"),
                }
            }
            Err(e) => eprintln!("[bench trajectory write failed: {e}]"),
        }
    }
    eprintln!(
        "[{} artifact(s) regenerated in {:.1}s]",
        shown,
        start.elapsed().as_secs_f64()
    );
}

//! The hybrid log (paper §7).
//!
//! "Records in FASTER are stored in a hybrid log — a log partitioned across
//! main memory (the tail of the log that is writable) and storage (the
//! read-only part of the log). [...] When main memory is insufficient,
//! older data will be appended to storage, e.g., SSDs or remote memory."
//!
//! Addresses are monotone (never reused); the newest `capacity` bytes live
//! in a circular in-memory buffer:
//!
//! ```text
//!   0 ... [device-resident] ... head ... [in-memory read-only] ...
//!         read_only ... [in-memory mutable] ... tail
//! ```
//!
//! Invariant: `head <= flushed <= read_only <= tail` and
//! `tail - head <= capacity`. Eviction flushes `[flushed, read_only)` to
//! the device (blocking until durable — buffer space must not be reused
//! before the flush lands remotely) and then advances `head`.

use std::collections::HashSet;

use crate::device::{Completion, Device, Token};

/// First valid log address (0 is the null/chain-terminator address).
pub const LOG_BASE: u64 = 64;

/// Flush chunk bound — must fit comfortably in a Cowbird request data ring.
const FLUSH_CHUNK: u64 = 64 * 1024;

/// The hybrid log over a storage device.
pub struct HybridLog<D: Device> {
    buf: Vec<u8>,
    capacity: u64,
    head: u64,
    flushed: u64,
    read_only: u64,
    tail: u64,
    /// Fraction of the in-memory window kept mutable (FASTER defaults to
    /// ~10 %; we keep it configurable).
    mutable_fraction: f64,
    pub device: D,
    /// Completions that belong to the store's pending reads but surfaced
    /// while the log was waiting for its own flush tokens; the store drains
    /// them via [`HybridLog::take_stashed`].
    stashed: Vec<Completion>,
    /// Flush statistics.
    pub bytes_flushed: u64,
    pub evictions: u64,
}

impl<D: Device> HybridLog<D> {
    /// Create a log with an in-memory window of `capacity` bytes.
    pub fn new(capacity: u64, mutable_fraction: f64, device: D) -> HybridLog<D> {
        assert!(capacity >= 4096, "window too small");
        assert!((0.01..=1.0).contains(&mutable_fraction));
        HybridLog {
            buf: vec![0; capacity as usize],
            capacity,
            head: LOG_BASE,
            flushed: LOG_BASE,
            read_only: LOG_BASE,
            tail: LOG_BASE,
            mutable_fraction,
            device,
            stashed: Vec::new(),
            bytes_flushed: 0,
            evictions: 0,
        }
    }

    /// Completions for operations the log does not own (reads issued by the
    /// store) that were reaped during a blocking flush.
    pub fn take_stashed(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.stashed)
    }

    /// Wait until every token in `tokens` completes, stashing any foreign
    /// completions for the store.
    fn await_tokens(&mut self, mut tokens: HashSet<Token>) {
        let mut spins: u64 = 0;
        while !tokens.is_empty() {
            let got = self.device.poll();
            if got.is_empty() {
                spins += 1;
                if spins.is_multiple_of(16) {
                    std::thread::yield_now();
                }
                continue;
            }
            for c in got {
                if tokens.remove(&c.token) {
                    debug_assert!(c.ok, "flush write failed");
                } else {
                    self.stashed.push(c);
                }
            }
        }
    }

    pub fn head(&self) -> u64 {
        self.head
    }

    pub fn tail(&self) -> u64 {
        self.tail
    }

    pub fn read_only_boundary(&self) -> u64 {
        self.read_only
    }

    /// Is `addr` still resident in memory?
    pub fn in_memory(&self, addr: u64) -> bool {
        addr >= self.head && addr < self.tail
    }

    /// Addresses below this are durable on the device.
    pub fn flushed_boundary(&self) -> u64 {
        self.flushed
    }

    /// Allocate `len` contiguous log bytes, evicting cold data if needed.
    /// Returns the record's address.
    pub fn alloc(&mut self, len: u64) -> u64 {
        assert!(
            len > 0 && len <= self.capacity / 2,
            "allocation of {len} bytes"
        );
        if self.tail + len - self.head > self.capacity {
            // Evict at least what is needed, but advance the head by a
            // whole region (1/8 of the window) so eviction is amortized —
            // evicting one record at a time would pay a device round trip
            // per subsequent allocation.
            let needed = self.tail + len - self.capacity;
            let target = needed.max(self.head + self.capacity / 8);
            self.evict(target);
        }
        let addr = self.tail;
        self.tail += len;
        addr
    }

    /// Evict so that `head >= target_head`.
    fn evict(&mut self, target_head: u64) {
        self.evictions += 1;
        // Move the read-only boundary forward far enough, keeping the
        // configured mutable window when possible.
        let mutable_bytes = (self.capacity as f64 * self.mutable_fraction) as u64;
        let wanted_ro = self.tail.saturating_sub(mutable_bytes).max(target_head);
        let new_ro = wanted_ro.min(self.tail).max(self.read_only);
        // Flush [flushed, new_ro).
        let mut flush_tokens = HashSet::new();
        let mut at = self.flushed;
        while at < new_ro {
            let phys = (at % self.capacity) as usize;
            let span = (new_ro - at)
                .min(FLUSH_CHUNK)
                .min(self.capacity - at % self.capacity) as usize;
            flush_tokens.insert(self.device.write_async(at, &self.buf[phys..phys + span]));
            self.bytes_flushed += span as u64;
            at += span as u64;
        }
        self.read_only = new_ro;
        // Buffer space is reused as soon as head advances: wait for
        // durability first.
        self.await_tokens(flush_tokens);
        self.flushed = new_ro;
        self.head = target_head.min(self.flushed);
        debug_assert!(self.tail - self.head <= self.capacity);
    }

    /// Force-flush everything below the tail (used before shutdown or by
    /// tests); the mutable region becomes read-only.
    pub fn flush_all(&mut self) {
        self.evict(self.head);
        // evict() only flushes to wanted_ro; force the remainder.
        let target = self.tail;
        let mut flush_tokens = HashSet::new();
        let mut at = self.flushed;
        while at < target {
            let phys = (at % self.capacity) as usize;
            let span = (target - at)
                .min(FLUSH_CHUNK)
                .min(self.capacity - at % self.capacity) as usize;
            flush_tokens.insert(self.device.write_async(at, &self.buf[phys..phys + span]));
            self.bytes_flushed += span as u64;
            at += span as u64;
        }
        self.await_tokens(flush_tokens);
        self.read_only = target;
        self.flushed = target;
    }

    /// Write `data` at `addr` (must be within the in-memory window; the
    /// caller owns ordering within the mutable region).
    pub fn write_at(&mut self, addr: u64, data: &[u8]) {
        debug_assert!(addr >= self.head, "write below head");
        debug_assert!(addr + data.len() as u64 <= self.tail, "write past tail");
        let mut off = addr;
        let mut i = 0;
        while i < data.len() {
            let phys = (off % self.capacity) as usize;
            let span = ((self.capacity - off % self.capacity) as usize).min(data.len() - i);
            self.buf[phys..phys + span].copy_from_slice(&data[i..i + span]);
            off += span as u64;
            i += span;
        }
    }

    /// Read `len` bytes at `addr` from memory; `None` if evicted.
    pub fn read_mem(&self, addr: u64, len: u64) -> Option<Vec<u8>> {
        if addr < self.head || addr + len > self.tail {
            return None;
        }
        let mut out = vec![0u8; len as usize];
        let mut off = addr;
        let mut i = 0;
        while i < out.len() {
            let phys = (off % self.capacity) as usize;
            let span = ((self.capacity - off % self.capacity) as usize).min(out.len() - i);
            out[i..i + span].copy_from_slice(&self.buf[phys..phys + span]);
            off += span as u64;
            i += span;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::LocalMemoryDevice;

    fn log(capacity: u64) -> HybridLog<LocalMemoryDevice> {
        HybridLog::new(capacity, 0.25, LocalMemoryDevice::new())
    }

    #[test]
    fn alloc_and_readback_in_memory() {
        let mut l = log(4096);
        let a = l.alloc(100);
        assert_eq!(a, LOG_BASE);
        l.write_at(a, &[7u8; 100]);
        assert_eq!(l.read_mem(a, 100).unwrap(), vec![7u8; 100]);
        assert!(l.in_memory(a));
    }

    #[test]
    fn eviction_flushes_then_advances_head() {
        let mut l = log(4096);
        let first = l.alloc(1024);
        l.write_at(first, &[1u8; 1024]);
        for i in 0..8u8 {
            let a = l.alloc(1024);
            l.write_at(a, &[i + 2; 1024]);
        }
        // The first record must be evicted by now.
        assert!(!l.in_memory(first));
        assert!(l.read_mem(first, 1024).is_none());
        assert!(l.evictions > 0);
        // And durable on the device.
        assert!(l.flushed_boundary() > first);
        let dev = &l.device;
        assert_eq!(dev.peek(first, 1024), vec![1u8; 1024]);
    }

    #[test]
    fn records_wrap_the_circular_buffer() {
        let mut l = log(4096);
        // Fill so the next alloc wraps the physical buffer.
        let mut last = 0;
        for i in 0..20u8 {
            let a = l.alloc(600);
            let pattern = vec![i; 600];
            l.write_at(a, &pattern);
            last = a;
            assert_eq!(l.read_mem(a, 600).unwrap(), pattern, "iter {i}");
        }
        assert!(l.in_memory(last));
    }

    #[test]
    fn flush_all_makes_everything_durable() {
        let mut l = log(8192);
        let a = l.alloc(256);
        l.write_at(a, &[9u8; 256]);
        l.flush_all();
        assert_eq!(l.flushed_boundary(), l.tail());
        assert_eq!(l.device.peek(a, 256), vec![9u8; 256]);
        // Still readable from memory (flushing != evicting).
        assert!(l.in_memory(a));
    }

    #[test]
    #[should_panic(expected = "allocation")]
    fn oversized_alloc_panics() {
        let mut l = log(4096);
        l.alloc(3000);
    }

    #[test]
    fn monotone_addresses_never_reused() {
        let mut l = log(4096);
        let mut prev = 0;
        for _ in 0..100 {
            let a = l.alloc(128);
            assert!(a > prev);
            prev = a;
        }
    }
}

//! The IDevice abstraction (paper §7).
//!
//! "We adapt FASTER to use Cowbird by instantiating an IDevice, the
//! interface FASTER exposes for implementing its storage layer for the
//! larger-than-memory part of the log."
//!
//! A device addresses the *log's* address space directly: the hybrid log
//! flushes `[addr, addr+len)` spans and reads them back by the same
//! addresses. All operations are asynchronous — completions surface through
//! [`Device::poll`], matching FASTER's callback-per-IO model and Cowbird's
//! notification groups.

/// Identifies an in-flight device operation.
pub type Token = u64;

/// A finished device operation.
#[derive(Clone, Debug)]
pub struct Completion {
    pub token: Token,
    /// Read data (None for writes).
    pub data: Option<Vec<u8>>,
    pub ok: bool,
}

/// Asynchronous storage for the cold portion of the hybrid log.
pub trait Device: Send {
    /// Begin writing `data` at log address `addr`.
    fn write_async(&mut self, addr: u64, data: &[u8]) -> Token;

    /// Begin reading `len` bytes at log address `addr`.
    fn read_async(&mut self, addr: u64, len: u32) -> Token;

    /// Begin a dependent read: dereference the 8-byte pointer word at
    /// `slot_addr` (48-bit address, high tag bits masked off) and fetch
    /// `len` bytes at the resulting address — one round trip where
    /// probe-then-fetch pays two. The completion's data is the wire format
    /// `[ChaseStatusWord: 8 B][block]` (see `cowbird::meta`). Backends
    /// without dependent-op support return `None` and the store falls back
    /// to the two-trip path.
    fn read_indirect_async(&mut self, _slot_addr: u64, _len: u32) -> Option<Token> {
        None
    }

    /// Collect finished operations.
    fn poll(&mut self) -> Vec<Completion>;

    /// Operations issued but not yet surfaced by [`Device::poll`].
    fn pending(&self) -> usize;

    /// Spin until every in-flight operation has completed, returning all
    /// completions (used by log eviction, which must not release buffer
    /// space before the flush is durable remotely).
    fn drain_blocking(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut spins: u64 = 0;
        while self.pending() > 0 {
            let got = self.poll();
            if got.is_empty() {
                spins += 1;
                if spins.is_multiple_of(16) {
                    // Yield aggressively: on few-core hosts the agent and
                    // NIC threads need this core to make progress.
                    std::thread::yield_now();
                }
            } else {
                out.extend(got);
            }
        }
        out
    }
}

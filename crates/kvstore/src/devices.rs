//! IDevice backends — one per Figure 9 series.
//!
//! * [`LocalMemoryDevice`] — "purely local memory that represents an upper
//!   bound on disaggregated memory performance".
//! * [`SsdSimDevice`] — the SATA SSD default backend, with its latency and
//!   IOPS character (delays modelled in wall-clock time, since this backend
//!   runs on the real-thread substrate).
//! * [`RdmaDevice`] — "an alternative design of an IDevice that can
//!   leverage remote memory using traditional one-sided RDMA verbs", in
//!   both synchronous and asynchronous flavours. The compute node pays the
//!   verb costs itself.
//! * [`CowbirdDevice`] — the paper's §7 port: one Cowbird channel per
//!   store shard (per thread), issuing `async_read`/`async_write` and
//!   completing through a notification group.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration as StdDuration, Instant as StdInstant};

use cowbird::channel::{Channel, ReadHandle};
use cowbird::meta::{ChaseStatus, ChaseStatusWord, CHASE_PTR_MASK};
use cowbird::poll::PollGroup;
use cowbird::region::RegionId;
use cowbird::reqid::ReqId;
use rdma::emu::EmuNic;
use rdma::mem::{Region, Rkey};
use rdma::qp::QpNum;
use rdma::verbs::{WorkRequest, WrOp};

use crate::device::{Completion, Device, Token};

// ---------------------------------------------------------------------
// Local memory
// ---------------------------------------------------------------------

/// Flat in-process memory; operations complete on the next poll.
pub struct LocalMemoryDevice {
    store: Vec<u8>,
    ready: VecDeque<Completion>,
    next_token: Token,
}

impl Default for LocalMemoryDevice {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalMemoryDevice {
    pub fn new() -> LocalMemoryDevice {
        LocalMemoryDevice {
            store: Vec::new(),
            ready: VecDeque::new(),
            next_token: 1,
        }
    }

    fn ensure(&mut self, end: u64) {
        if self.store.len() < end as usize {
            self.store.resize(end as usize, 0);
        }
    }

    /// Test hook: direct view of stored bytes.
    pub fn peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        let end = ((addr as usize) + len).min(self.store.len());
        if (addr as usize) < end {
            v[..end - addr as usize].copy_from_slice(&self.store[addr as usize..end]);
        }
        v
    }
}

impl Device for LocalMemoryDevice {
    fn write_async(&mut self, addr: u64, data: &[u8]) -> Token {
        self.ensure(addr + data.len() as u64);
        self.store[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        let token = self.next_token;
        self.next_token += 1;
        self.ready.push_back(Completion {
            token,
            data: None,
            ok: true,
        });
        token
    }

    fn read_async(&mut self, addr: u64, len: u32) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        let data = self.peek(addr, len as usize);
        self.ready.push_back(Completion {
            token,
            data: Some(data),
            ok: true,
        });
        token
    }

    fn read_indirect_async(&mut self, slot_addr: u64, len: u32) -> Option<Token> {
        // Local execution of the engine's single-hop semantics, including
        // the wire-format response, so store logic is backend-agnostic.
        let word = u64::from_le_bytes(self.peek(slot_addr, 8).try_into().unwrap());
        let ptr = word & CHASE_PTR_MASK;
        let token = self.next_token;
        self.next_token += 1;
        let (status, payload) = if ptr == 0 {
            (
                ChaseStatusWord {
                    status: ChaseStatus::NullPointer,
                    hops: 0,
                    final_addr: 0,
                },
                Vec::new(),
            )
        } else {
            let block = self.peek(ptr, len as usize);
            let next = if block.len() >= 8 {
                u64::from_le_bytes(block[..8].try_into().unwrap()) & CHASE_PTR_MASK
            } else {
                0
            };
            (
                ChaseStatusWord {
                    status: if next == 0 {
                        ChaseStatus::Ok
                    } else {
                        ChaseStatus::BudgetExhausted
                    },
                    hops: 1,
                    final_addr: ptr,
                },
                block,
            )
        };
        let mut data = status.encode().to_le_bytes().to_vec();
        data.extend_from_slice(&payload);
        self.ready.push_back(Completion {
            token,
            data: Some(data),
            ok: true,
        });
        Some(token)
    }

    fn poll(&mut self) -> Vec<Completion> {
        self.ready.drain(..).collect()
    }

    fn pending(&self) -> usize {
        self.ready.len()
    }
}

// ---------------------------------------------------------------------
// Simulated SATA SSD
// ---------------------------------------------------------------------

/// Local memory plus SATA-class completion delays (wall clock).
pub struct SsdSimDevice {
    inner: LocalMemoryDevice,
    latency: StdDuration,
    delayed: VecDeque<(StdInstant, Completion)>,
}

impl SsdSimDevice {
    /// `latency` per I/O (SATA flash: ~80 µs; tests may shrink it).
    pub fn new(latency: StdDuration) -> SsdSimDevice {
        SsdSimDevice {
            inner: LocalMemoryDevice::new(),
            latency,
            delayed: VecDeque::new(),
        }
    }

    fn absorb(&mut self) {
        let due = StdInstant::now() + self.latency;
        for c in self.inner.poll() {
            self.delayed.push_back((due, c));
        }
    }
}

impl Device for SsdSimDevice {
    fn write_async(&mut self, addr: u64, data: &[u8]) -> Token {
        let t = self.inner.write_async(addr, data);
        self.absorb();
        t
    }

    fn read_async(&mut self, addr: u64, len: u32) -> Token {
        let t = self.inner.read_async(addr, len);
        self.absorb();
        t
    }

    fn poll(&mut self) -> Vec<Completion> {
        let now = StdInstant::now();
        let mut out = Vec::new();
        while let Some((due, _)) = self.delayed.front() {
            if *due <= now {
                out.push(self.delayed.pop_front().unwrap().1);
            } else {
                break;
            }
        }
        out
    }

    fn pending(&self) -> usize {
        self.delayed.len()
    }
}

// ---------------------------------------------------------------------
// Direct one-sided RDMA
// ---------------------------------------------------------------------

/// Synchronous (block per op) or asynchronous (pipelined) verbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RdmaMode {
    Sync,
    Async,
}

/// An IDevice over raw one-sided RDMA to a memory pool region — the
/// "One-sided RDMA" baselines of Figure 9. The calling thread posts and
/// polls verbs itself.
pub struct RdmaDevice {
    nic: EmuNic,
    qpn: QpNum,
    pool_rkey: Rkey,
    /// Base offset of the log inside the pool region.
    pool_base: u64,
    mode: RdmaMode,
    staging: Region,
    staging_lkey: Rkey,
    staging_cursor: u64,
    inflight: HashMap<u64, (Token, Option<(u64, u32)>)>,
    ready: VecDeque<Completion>,
    next_wr: u64,
    next_token: Token,
}

impl RdmaDevice {
    pub fn new(
        nic: EmuNic,
        qpn: QpNum,
        pool_rkey: Rkey,
        pool_base: u64,
        mode: RdmaMode,
    ) -> RdmaDevice {
        let staging = Region::new(8 << 20);
        let staging_lkey = nic.register(staging.clone());
        RdmaDevice {
            nic,
            qpn,
            pool_rkey,
            pool_base,
            mode,
            staging,
            staging_lkey,
            staging_cursor: 0,
            inflight: HashMap::new(),
            ready: VecDeque::new(),
            next_wr: 1,
            next_token: 1,
        }
    }

    fn stage(&mut self, len: u32) -> u64 {
        let cap = self.staging.len() as u64;
        let len = len as u64;
        if self.staging_cursor % cap + len > cap {
            self.staging_cursor += cap - self.staging_cursor % cap;
        }
        let off = self.staging_cursor % cap;
        self.staging_cursor += len;
        off
    }

    fn reap(&mut self, block_for: Option<u64>) {
        loop {
            let got = self.nic.poll(64);
            if got.is_empty() {
                match block_for {
                    Some(wr) if self.inflight.contains_key(&wr) => {
                        std::thread::yield_now();
                        continue;
                    }
                    _ => break,
                }
            }
            for c in got {
                if let Some((token, read_info)) = self.inflight.remove(&c.wr_id) {
                    let data = read_info
                        .map(|(off, len)| self.staging.read_vec(off, len as usize).unwrap());
                    self.ready.push_back(Completion {
                        token,
                        data,
                        ok: c.is_ok(),
                    });
                }
            }
            if let Some(wr) = block_for {
                if !self.inflight.contains_key(&wr) {
                    break;
                }
            }
        }
    }
}

impl Device for RdmaDevice {
    fn write_async(&mut self, addr: u64, data: &[u8]) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        let wr_id = self.next_wr;
        self.next_wr += 1;
        self.inflight.insert(wr_id, (token, None));
        self.nic
            .post(
                self.qpn,
                WorkRequest {
                    wr_id,
                    op: WrOp::WriteInline {
                        remote_addr: self.pool_base + addr,
                        remote_rkey: self.pool_rkey,
                        data: data.into(),
                    },
                },
            )
            .expect("rdma device write");
        if self.mode == RdmaMode::Sync {
            self.reap(Some(wr_id));
        }
        token
    }

    fn read_async(&mut self, addr: u64, len: u32) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        let wr_id = self.next_wr;
        self.next_wr += 1;
        let off = self.stage(len);
        self.inflight.insert(wr_id, (token, Some((off, len))));
        self.nic
            .post(
                self.qpn,
                WorkRequest {
                    wr_id,
                    op: WrOp::Read {
                        local_rkey: self.staging_lkey,
                        local_addr: off,
                        remote_addr: self.pool_base + addr,
                        remote_rkey: self.pool_rkey,
                        len,
                    },
                },
            )
            .expect("rdma device read");
        if self.mode == RdmaMode::Sync {
            self.reap(Some(wr_id));
        }
        token
    }

    fn poll(&mut self) -> Vec<Completion> {
        self.reap(None);
        self.ready.drain(..).collect()
    }

    fn pending(&self) -> usize {
        self.inflight.len() + self.ready.len()
    }
}

// ---------------------------------------------------------------------
// Cowbird
// ---------------------------------------------------------------------

/// The §7 integration: an IDevice over a Cowbird channel.
///
/// "To reduce contention, each FASTER thread calls through the device
/// poll_create() to create a notification group. After issuing an I/O
/// operation with async_read() or async_write(), a thread immediately calls
/// poll_add() ... and invokes poll_wait() periodically."
pub struct CowbirdDevice {
    channel: Channel,
    group: PollGroup,
    region: RegionId,
    reads: HashMap<ReqId, (Token, ReadHandle)>,
    writes: HashMap<ReqId, Token>,
    ready: VecDeque<Completion>,
    next_token: Token,
    /// Issue retries due to full rings (flow-control pressure indicator).
    pub ring_full_retries: u64,
}

impl CowbirdDevice {
    /// Wrap a connected channel; log addresses map 1:1 onto offsets of
    /// `region` (which must be at least as large as the log's address
    /// space will grow).
    pub fn new(channel: Channel, region: RegionId) -> CowbirdDevice {
        CowbirdDevice {
            channel,
            group: PollGroup::new(),
            region,
            reads: HashMap::new(),
            writes: HashMap::new(),
            ready: VecDeque::new(),
            next_token: 1,
            ring_full_retries: 0,
        }
    }

    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Reap completions from the notification group into `ready`.
    fn reap(&mut self) {
        loop {
            let done = self.group.poll_try(&mut self.channel, 64);
            if done.is_empty() {
                break;
            }
            for id in done {
                if let Some((token, handle)) = self.reads.remove(&id) {
                    let data = self
                        .channel
                        .take_response(&handle)
                        .expect("completed read must yield data");
                    self.ready.push_back(Completion {
                        token,
                        data: Some(data),
                        ok: true,
                    });
                } else if let Some(token) = self.writes.remove(&id) {
                    self.ready.push_back(Completion {
                        token,
                        data: None,
                        ok: true,
                    });
                }
            }
        }
    }
}

impl Device for CowbirdDevice {
    fn write_async(&mut self, addr: u64, data: &[u8]) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        loop {
            match self.channel.async_write(self.region, addr, data) {
                Ok(id) => {
                    self.group.add(id);
                    self.writes.insert(id, token);
                    return token;
                }
                Err(e) if e.is_retryable() => {
                    // Paper §4.3: drain completions, then retry.
                    self.ring_full_retries += 1;
                    self.reap();
                    std::hint::spin_loop();
                }
                Err(e) => panic!("cowbird write failed: {e}"),
            }
        }
    }

    fn read_async(&mut self, addr: u64, len: u32) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        loop {
            match self.channel.async_read(self.region, addr, len) {
                Ok(handle) => {
                    self.group.add(handle.id);
                    self.reads.insert(handle.id, (token, handle));
                    return token;
                }
                Err(e) if e.is_retryable() => {
                    self.ring_full_retries += 1;
                    self.reap();
                    std::hint::spin_loop();
                }
                Err(e) => panic!("cowbird read failed: {e}"),
            }
        }
    }

    fn read_indirect_async(&mut self, slot_addr: u64, len: u32) -> Option<Token> {
        let token = self.next_token;
        self.next_token += 1;
        loop {
            // The raw response bytes are already the wire format the store
            // expects (`[status word][block]`), so the completion path is
            // shared with plain reads — `take_response` delivers both.
            match self
                .channel
                .async_read_indirect(self.region, slot_addr, 0, 0, len)
            {
                Ok(handle) => {
                    self.group.add(handle.id);
                    self.reads.insert(handle.id, (token, handle));
                    return Some(token);
                }
                Err(e) if e.is_retryable() => {
                    self.ring_full_retries += 1;
                    self.reap();
                    std::hint::spin_loop();
                }
                Err(e) => panic!("cowbird read_indirect failed: {e}"),
            }
        }
    }

    fn poll(&mut self) -> Vec<Completion> {
        self.reap();
        self.ready.drain(..).collect()
    }

    fn pending(&self) -> usize {
        self.reads.len() + self.writes.len() + self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_memory_roundtrip() {
        let mut d = LocalMemoryDevice::new();
        let wt = d.write_async(100, b"abc");
        let rt = d.read_async(100, 3);
        let done = d.poll();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].token, wt);
        assert!(done[0].data.is_none());
        assert_eq!(done[1].token, rt);
        assert_eq!(done[1].data.as_deref(), Some(b"abc".as_slice()));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn local_memory_reads_beyond_written_are_zero() {
        let mut d = LocalMemoryDevice::new();
        d.read_async(1000, 4);
        let done = d.poll();
        assert_eq!(done[0].data.as_deref(), Some([0u8; 4].as_slice()));
    }

    #[test]
    fn ssd_delays_completions() {
        let mut d = SsdSimDevice::new(StdDuration::from_millis(5));
        d.write_async(0, b"x");
        assert!(d.poll().is_empty(), "not due yet");
        assert_eq!(d.pending(), 1);
        std::thread::sleep(StdDuration::from_millis(8));
        assert_eq!(d.poll().len(), 1);
    }

    #[test]
    fn drain_blocking_waits_for_ssd() {
        let mut d = SsdSimDevice::new(StdDuration::from_millis(3));
        d.write_async(0, b"a");
        d.write_async(8, b"b");
        let done = d.drain_blocking();
        assert_eq!(done.len(), 2);
        assert_eq!(d.pending(), 0);
    }
}

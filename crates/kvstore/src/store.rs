//! The store: sharded reads/upserts over the hybrid log, with asynchronous
//! storage-miss handling.
//!
//! A read whose record lives below the log head returns
//! [`ReadResult::Pending`]; the caller later collects it via
//! [`FasterKv::poll`] — mirroring FASTER threads completing pending I/Os
//! through Cowbird's notification groups (paper §7). Hash-bucket collisions
//! resolve by walking the record chain, re-issuing device reads as needed
//! (chains can span memory and storage).

use std::collections::HashMap;

use cowbird::meta::{ChaseStatus, ChaseStatusWord};
use parking_lot::Mutex;

use crate::device::{Device, Token};
use crate::hlog::HybridLog;
use crate::index::{hash_key, HashIndex};
use crate::record::{Record, HEADER_BYTES, NULL_ADDR};

/// A pool-side mirror of the hash-index slots, making the index probe a
/// *remote* access — the disaggregated deployment where the index outgrows
/// compute memory. Every publish also writes the packed slot word
/// (`[tag:16 | address:48]`) at `base + slot * 8` on the device, so a GET
/// whose record was evicted can resolve entirely pool-side.
#[derive(Clone, Copy, Debug)]
pub struct RemoteIndex {
    /// Device address of slot 0's mirror. Must sit above any address the
    /// log will ever reach — enforced by an assert on each mirror write.
    pub base: u64,
    /// Issue one dependent-op `ReadIndirect` per GET (slot dereference +
    /// record fetch in a single round trip) instead of probe-then-fetch.
    /// Falls back to two trips when the device lacks dependent-op support.
    pub chase: bool,
}

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// In-memory log window per shard, bytes.
    pub memory_per_shard: u64,
    /// Mutable fraction of the window.
    pub mutable_fraction: f64,
    /// Hash-index slots per shard.
    pub index_slots: usize,
    /// Largest value the store will ever hold (sizes device reads — FASTER
    /// likewise reads a fixed upper bound per miss).
    pub max_value_bytes: u32,
    /// Mirror the hash index to the device and serve cold GETs through it.
    pub remote_index: Option<RemoteIndex>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            memory_per_shard: 1 << 20,
            mutable_fraction: 0.25,
            index_slots: 1 << 16,
            max_value_bytes: 512,
            remote_index: None,
        }
    }
}

/// Aggregate GET-path counters (summed over shards). The chase acceptance
/// bar reads as: with `chase` on, `round_trips == gets - local_hits` —
/// exactly one device round trip per cold GET.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GetStats {
    /// GETs served (reads + RMW current-value fetches).
    pub gets: u64,
    /// GETs resolved from the in-memory log, zero device trips.
    pub local_hits: u64,
    /// Device round trips issued on behalf of GETs.
    pub round_trips: u64,
    /// GETs that went out as a one-trip dependent read.
    pub chase_gets: u64,
    /// Chase responses that could not resolve the GET (abort status or an
    /// undecodable block) and fell back to the two-trip path.
    pub chase_fallbacks: u64,
}

/// Outcome of a read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadResult {
    Found(Vec<u8>),
    NotFound,
    /// The record is on the device; collect via [`FasterKv::poll`].
    Pending(PendingId),
}

/// Handle to a pending storage read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PendingId {
    pub shard: usize,
    pub id: u64,
}

enum Resolution {
    Found(Vec<u8>),
    NotFound,
    NeedDevice(Token, PendingKind),
}

/// What a pending device completion means to the GET that issued it.
enum PendingKind {
    /// A record read at a known address (chain walk step).
    Record,
    /// Trip 1 of probe-then-fetch: the 8-byte mirrored slot word.
    SlotProbe,
    /// A one-trip dependent read: `[status word][record block]`.
    Chase,
}

struct PendingOp {
    pid: u64,
    key: u64,
    kind: PendingKind,
}

struct Shard<D: Device> {
    index: HashIndex,
    log: HybridLog<D>,
    /// device token -> the GET continuation it resolves
    pending: HashMap<Token, PendingOp>,
    next_pending: u64,
    max_read_span: u64,
    remote_index: Option<RemoteIndex>,
    stats: GetStats,
}

impl<D: Device> Shard<D> {
    fn new(cfg: &StoreConfig, device: D) -> Shard<D> {
        Shard {
            index: HashIndex::new(cfg.index_slots),
            log: HybridLog::new(cfg.memory_per_shard, cfg.mutable_fraction, device),
            pending: HashMap::new(),
            next_pending: 1,
            max_read_span: Record::footprint(cfg.max_value_bytes as usize),
            remote_index: cfg.remote_index,
            stats: GetStats::default(),
        }
    }

    /// Mirror `key`'s (possibly shared) slot to the device after a publish.
    /// Single-writer per shard, so a plain overwrite of the packed word is
    /// enough; channel FIFO ordering makes it visible to any later chase.
    fn mirror_slot(&mut self, key: u64) {
        let Some(ri) = self.remote_index else {
            return;
        };
        let slot = self.index.slot_of(key);
        let word = self.index.raw_slot(slot);
        assert!(
            self.log.tail() <= ri.base,
            "log tail {} grew into the slot mirror at {}",
            self.log.tail(),
            ri.base
        );
        // The completion surfaces in poll() without a pending entry and is
        // discarded there, like a flush ack.
        self.log
            .device
            .write_async(ri.base + slot as u64 * 8, &word.to_le_bytes());
    }

    fn upsert(&mut self, key: u64, value: &[u8]) {
        self.append(key, value, false)
    }

    fn delete(&mut self, key: u64) {
        // FASTER-style deletion: append a tombstone version.
        self.append(key, &[], true)
    }

    fn append(&mut self, key: u64, value: &[u8], tombstone: bool) {
        let mut head = self.index.lookup(key);
        let fp = Record::footprint(value.len());
        let addr = self.log.alloc(fp);
        let rec = Record {
            prev: head.unwrap_or(NULL_ADDR),
            key,
            value: value.to_vec(),
            tombstone,
        };
        self.log.write_at(addr, &rec.encode_vec());
        loop {
            match self.index.publish(key, head, addr) {
                Ok(()) => break,
                Err(observed) => {
                    head = if observed == NULL_ADDR {
                        None
                    } else {
                        Some(observed)
                    };
                    // Re-chain the freshly written record before retrying.
                    self.log
                        .write_at(addr, &head.unwrap_or(NULL_ADDR).to_le_bytes());
                }
            }
        }
        self.mirror_slot(key);
    }

    /// Walk the chain from `addr`; stop at a key match, the chain end, or
    /// the memory/storage boundary.
    fn resolve(&mut self, key: u64, mut addr: u64) -> Resolution {
        loop {
            if addr == NULL_ADDR {
                return Resolution::NotFound;
            }
            if self.log.in_memory(addr) {
                let header = self
                    .log
                    .read_mem(addr, HEADER_BYTES)
                    .expect("in-memory header");
                let (prev, rkey, val_len, flags) =
                    Record::decode_header(&header).expect("header decodes");
                if rkey == key {
                    if flags & crate::record::FLAG_TOMBSTONE != 0 {
                        return Resolution::NotFound;
                    }
                    let val = self
                        .log
                        .read_mem(addr + HEADER_BYTES, val_len as u64)
                        .expect("in-memory value");
                    return Resolution::Found(val);
                }
                addr = prev;
            } else {
                let span = self
                    .max_read_span
                    .min(self.log.flushed_boundary().saturating_sub(addr));
                debug_assert!(span >= HEADER_BYTES);
                self.stats.round_trips += 1;
                let token = self.log.device.read_async(addr, span as u32);
                return Resolution::NeedDevice(token, PendingKind::Record);
            }
        }
    }

    /// Kick off a cold GET through the remote index mirror: one dependent
    /// read when chase is on and the device supports it, otherwise trip 1
    /// of probe-then-fetch (the slot word).
    fn remote_get(&mut self, key: u64) -> (Token, PendingKind) {
        let ri = self.remote_index.expect("remote path needs a mirror");
        let slot_addr = ri.base + self.index.slot_of(key) as u64 * 8;
        if ri.chase {
            if let Some(token) = self
                .log
                .device
                .read_indirect_async(slot_addr, self.max_read_span as u32)
            {
                self.stats.round_trips += 1;
                self.stats.chase_gets += 1;
                return (token, PendingKind::Chase);
            }
        }
        self.stats.round_trips += 1;
        (
            self.log.device.read_async(slot_addr, 8),
            PendingKind::SlotProbe,
        )
    }

    fn read(&mut self, key: u64) -> Result<Resolution, ()> {
        self.stats.gets += 1;
        match self.index.lookup(key) {
            None => {
                // Mirror parity: an empty local slot means an empty (or
                // foreign-tag) mirrored slot — no trip needed either way.
                self.stats.local_hits += 1;
                Ok(Resolution::NotFound)
            }
            Some(addr) if self.remote_index.is_some() && !self.log.in_memory(addr) => {
                let (token, kind) = self.remote_get(key);
                Ok(Resolution::NeedDevice(token, kind))
            }
            Some(addr) => {
                let r = self.resolve(key, addr);
                if !matches!(r, Resolution::NeedDevice(..)) {
                    self.stats.local_hits += 1;
                }
                Ok(r)
            }
        }
    }

    /// Collect device completions, continuing chain walks as needed.
    fn poll(&mut self) -> Vec<(u64, Option<Vec<u8>>)> {
        let mut completions = self.log.take_stashed();
        completions.extend(self.log.device.poll());
        let mut out = Vec::new();
        for c in completions {
            let Some(op) = self.pending.remove(&c.token) else {
                continue; // a flush or slot-mirror ack that raced; harmless
            };
            let (pid, key) = (op.pid, op.key);
            if !c.ok {
                out.push((pid, None));
                continue;
            }
            let bytes = c.data.expect("read completion carries data");
            match op.kind {
                PendingKind::Record => self.continue_with_record(pid, key, &bytes, &mut out),
                PendingKind::SlotProbe => {
                    // Trip 2 of probe-then-fetch: dereference the mirrored
                    // slot word and go after the record.
                    let word = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slot"));
                    let addr = HashIndex::addr_of_raw(word);
                    if addr == NULL_ADDR {
                        out.push((pid, None));
                    } else {
                        self.continue_resolve(pid, key, addr, &mut out);
                    }
                }
                PendingKind::Chase => {
                    let outcome = bytes
                        .get(..8)
                        .map(|w| u64::from_le_bytes(w.try_into().unwrap()))
                        .and_then(ChaseStatusWord::decode);
                    match outcome {
                        Some(s)
                            if matches!(
                                s.status,
                                ChaseStatus::Ok | ChaseStatus::BudgetExhausted
                            ) =>
                        {
                            self.continue_with_record(pid, key, &bytes[8..], &mut out)
                        }
                        Some(s) if s.status == ChaseStatus::NullPointer => {
                            out.push((pid, None));
                        }
                        _ => {
                            // Abort status or undecodable response: retry
                            // the GET on the two-trip path rather than
                            // guessing.
                            self.stats.chase_fallbacks += 1;
                            let ri = self.remote_index.expect("chase implies a mirror");
                            let slot_addr = ri.base + self.index.slot_of(key) as u64 * 8;
                            self.stats.round_trips += 1;
                            let token = self.log.device.read_async(slot_addr, 8);
                            self.pending.insert(
                                token,
                                PendingOp {
                                    pid,
                                    key,
                                    kind: PendingKind::SlotProbe,
                                },
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// A record block arrived for `pid`: finish on a key match, otherwise
    /// keep walking the chain.
    fn continue_with_record(
        &mut self,
        pid: u64,
        key: u64,
        bytes: &[u8],
        out: &mut Vec<(u64, Option<Vec<u8>>)>,
    ) {
        let Some(rec) = Record::decode(bytes) else {
            out.push((pid, None));
            return;
        };
        if rec.key == key {
            out.push((pid, (!rec.tombstone).then_some(rec.value)));
            return;
        }
        // Collision: continue along the chain (may hop back into memory or
        // need another device read).
        self.continue_resolve(pid, key, rec.prev, out);
    }

    fn continue_resolve(
        &mut self,
        pid: u64,
        key: u64,
        addr: u64,
        out: &mut Vec<(u64, Option<Vec<u8>>)>,
    ) {
        match self.resolve(key, addr) {
            Resolution::Found(v) => out.push((pid, Some(v))),
            Resolution::NotFound => out.push((pid, None)),
            Resolution::NeedDevice(token, kind) => {
                self.pending.insert(token, PendingOp { pid, key, kind });
            }
        }
    }
}

/// The FASTER-style store.
pub struct FasterKv<D: Device> {
    shards: Vec<Mutex<Shard<D>>>,
}

impl<D: Device> FasterKv<D> {
    /// Create a store with one shard per device (a shard per application
    /// thread is the intended deployment, matching the paper's per-thread
    /// Cowbird channels).
    pub fn new(cfg: StoreConfig, devices: Vec<D>) -> FasterKv<D> {
        assert!(!devices.is_empty());
        FasterKv {
            shards: devices
                .into_iter()
                .map(|d| Mutex::new(Shard::new(&cfg, d)))
                .collect(),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a key (uses hash bits disjoint from the index's).
    pub fn shard_of(&self, key: u64) -> usize {
        ((hash_key(key) >> 48) % self.shards.len() as u64) as usize
    }

    /// Insert or update.
    pub fn upsert(&self, key: u64, value: &[u8]) {
        self.shards[self.shard_of(key)].lock().upsert(key, value)
    }

    /// Delete a key (appends a tombstone version, as FASTER does).
    pub fn delete(&self, key: u64) {
        self.shards[self.shard_of(key)].lock().delete(key)
    }

    /// Atomic read-modify-write: `f` sees the current value (None if
    /// absent) and returns the new one. Holds the shard for the duration;
    /// if the current version is in cold storage, the shard's device is
    /// polled inline until it arrives (FASTER's RMW similarly goes pending
    /// on a storage miss).
    pub fn rmw(&self, key: u64, f: impl FnOnce(Option<&[u8]>) -> Vec<u8>) {
        let shard = self.shard_of(key);
        let mut guard = self.shards[shard].lock();
        let current = match guard.read(key) {
            Ok(Resolution::Found(v)) => Some(v),
            Ok(Resolution::NotFound) | Err(()) => None,
            Ok(Resolution::NeedDevice(token, kind)) => {
                // Resolve inline, still holding the shard.
                let pid = guard.next_pending;
                guard.next_pending += 1;
                guard.pending.insert(token, PendingOp { pid, key, kind });
                let mut got = None;
                let mut spins: u64 = 0;
                while got.is_none() {
                    for (id, v) in guard.poll() {
                        if id == pid {
                            got = Some(v);
                        }
                    }
                    if got.is_none() {
                        spins += 1;
                        if spins.is_multiple_of(8) {
                            std::thread::yield_now();
                        }
                    }
                }
                got.unwrap()
            }
        };
        let new = f(current.as_deref());
        guard.upsert(key, &new);
    }

    /// Read; may return `Pending` when the record is in cold storage.
    pub fn read(&self, key: u64) -> ReadResult {
        let shard = self.shard_of(key);
        // One lock scope: the pending entry must be registered before any
        // other thread can poll the device and observe the completion.
        let mut guard = self.shards[shard].lock();
        match guard.read(key) {
            Ok(Resolution::Found(v)) => ReadResult::Found(v),
            Ok(Resolution::NotFound) => ReadResult::NotFound,
            Ok(Resolution::NeedDevice(token, kind)) => {
                let id = guard.next_pending;
                guard.next_pending += 1;
                guard
                    .pending
                    .insert(token, PendingOp { pid: id, key, kind });
                ReadResult::Pending(PendingId { shard, id })
            }
            Err(()) => ReadResult::NotFound,
        }
    }

    /// Collect completed pending reads for a shard.
    pub fn poll(&self, shard: usize) -> Vec<(PendingId, Option<Vec<u8>>)> {
        self.shards[shard]
            .lock()
            .poll()
            .into_iter()
            .map(|(id, v)| (PendingId { shard, id }, v))
            .collect()
    }

    /// Convenience for tests and single-threaded examples: read and spin
    /// for the result. Assumes no other caller is polling the same shard
    /// concurrently.
    pub fn read_blocking(&self, key: u64) -> Option<Vec<u8>> {
        match self.read(key) {
            ReadResult::Found(v) => Some(v),
            ReadResult::NotFound => None,
            ReadResult::Pending(pid) => {
                let mut spins: u64 = 0;
                loop {
                    for (got, v) in self.poll(pid.shard) {
                        if got == pid {
                            return v;
                        }
                    }
                    spins += 1;
                    if spins.is_multiple_of(8) {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Flush all shards' logs to their devices.
    pub fn flush_all(&self) {
        for s in &self.shards {
            s.lock().log.flush_all();
        }
    }

    /// Aggregate GET-path counters across shards.
    pub fn get_stats(&self) -> GetStats {
        let mut agg = GetStats::default();
        for s in &self.shards {
            let g = s.lock();
            agg.gets += g.stats.gets;
            agg.local_hits += g.stats.local_hits;
            agg.round_trips += g.stats.round_trips;
            agg.chase_gets += g.stats.chase_gets;
            agg.chase_fallbacks += g.stats.chase_fallbacks;
        }
        agg
    }

    /// Aggregate log statistics: (bytes flushed, evictions).
    pub fn log_stats(&self) -> (u64, u64) {
        let mut bytes = 0;
        let mut ev = 0;
        for s in &self.shards {
            let g = s.lock();
            bytes += g.log.bytes_flushed;
            ev += g.log.evictions;
        }
        (bytes, ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::LocalMemoryDevice;

    fn small_store(shards: usize) -> FasterKv<LocalMemoryDevice> {
        let cfg = StoreConfig {
            memory_per_shard: 16 << 10,
            mutable_fraction: 0.25,
            index_slots: 1 << 12,
            max_value_bytes: 256,
            remote_index: None,
        };
        FasterKv::new(cfg, (0..shards).map(|_| LocalMemoryDevice::new()).collect())
    }

    #[test]
    fn basic_upsert_read_in_memory() {
        let kv = small_store(1);
        kv.upsert(1, b"one");
        kv.upsert(2, b"two");
        assert_eq!(kv.read(1), ReadResult::Found(b"one".to_vec()));
        assert_eq!(kv.read(2), ReadResult::Found(b"two".to_vec()));
        assert_eq!(kv.read(3), ReadResult::NotFound);
    }

    #[test]
    fn updates_return_latest_version() {
        let kv = small_store(1);
        for i in 0..10u64 {
            kv.upsert(42, format!("v{i}").as_bytes());
        }
        assert_eq!(kv.read_blocking(42), Some(b"v9".to_vec()));
    }

    #[test]
    fn eviction_forces_pending_reads_that_resolve() {
        let kv = small_store(1);
        // Write enough 64-byte values to evict the early ones from the
        // 16 KiB window.
        for k in 0..1000u64 {
            kv.upsert(k, &[k as u8; 64]);
        }
        let (_bytes, evictions) = kv.log_stats();
        assert!(evictions > 0, "must have evicted");
        // Early keys now come from the device.
        let r = kv.read(0);
        assert!(matches!(r, ReadResult::Pending(_)), "got {r:?}");
        assert_eq!(kv.read_blocking(0), Some(vec![0u8; 64]));
        // And recent keys still come from memory.
        assert_eq!(kv.read(999), ReadResult::Found(vec![231u8; 64]));
    }

    #[test]
    fn every_key_survives_eviction() {
        let kv = small_store(1);
        for k in 0..2000u64 {
            kv.upsert(k, k.to_le_bytes().as_slice());
        }
        for k in (0..2000u64).step_by(37) {
            let v = kv
                .read_blocking(k)
                .unwrap_or_else(|| panic!("key {k} lost"));
            assert_eq!(v, k.to_le_bytes().as_slice());
        }
    }

    #[test]
    fn updates_survive_eviction_with_old_versions_on_device() {
        let kv = small_store(1);
        kv.upsert(7, b"old");
        for k in 100..1100u64 {
            kv.upsert(k, &[1u8; 64]);
        }
        kv.upsert(7, b"new");
        for k in 1100..2100u64 {
            kv.upsert(k, &[2u8; 64]);
        }
        assert_eq!(kv.read_blocking(7), Some(b"new".to_vec()));
    }

    #[test]
    fn sharding_routes_consistently() {
        let kv = small_store(4);
        for k in 0..500u64 {
            kv.upsert(k, &k.to_le_bytes());
        }
        for k in 0..500u64 {
            assert_eq!(
                kv.read_blocking(k),
                Some(k.to_le_bytes().to_vec()),
                "key {k}"
            );
        }
        assert_eq!(kv.shards(), 4);
    }

    #[test]
    fn concurrent_shard_access() {
        use std::sync::Arc;
        let kv = Arc::new(small_store(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                let base = t * 10_000;
                for k in base..base + 1500 {
                    kv.upsert(k, &k.to_le_bytes());
                }
                for k in base..base + 1500 {
                    assert_eq!(kv.read_blocking(k), Some(k.to_le_bytes().to_vec()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn zero_length_values_work() {
        let kv = small_store(1);
        kv.upsert(5, b"");
        assert_eq!(kv.read_blocking(5), Some(vec![]));
    }
}

#[cfg(test)]
mod remote_index_tests {
    use super::*;
    use crate::devices::LocalMemoryDevice;

    /// Mirror base well above anything a 16 KiB-window test log reaches.
    const MIRROR_BASE: u64 = 1 << 20;

    fn remote_store(chase: bool) -> FasterKv<LocalMemoryDevice> {
        FasterKv::new(
            StoreConfig {
                memory_per_shard: 16 << 10,
                mutable_fraction: 0.25,
                index_slots: 1 << 12,
                max_value_bytes: 256,
                remote_index: Some(RemoteIndex {
                    base: MIRROR_BASE,
                    chase,
                }),
            },
            vec![LocalMemoryDevice::new()],
        )
    }

    /// Keys whose hash buckets are pairwise distinct, so every cold GET is
    /// a head hit (no cross-key chain walks to muddy the trip counts).
    fn collision_free_keys(n: usize) -> Vec<u64> {
        let scratch = HashIndex::new(1 << 12);
        let mut used = std::collections::HashSet::new();
        let mut keys = Vec::new();
        let mut k = 1u64;
        while keys.len() < n {
            if used.insert(scratch.slot_of(k)) {
                keys.push(k);
            }
            k += 1;
        }
        keys
    }

    /// A pair of distinct keys sharing one hash bucket.
    fn colliding_pair() -> (u64, u64) {
        let scratch = HashIndex::new(1 << 12);
        let mut seen: HashMap<usize, u64> = HashMap::new();
        for k in 1u64..100_000 {
            if let Some(&other) = seen.get(&scratch.slot_of(k)) {
                return (other, k);
            }
            seen.insert(scratch.slot_of(k), k);
        }
        unreachable!("4096 buckets must collide within 100k keys");
    }

    fn evict_everything(kv: &FasterKv<LocalMemoryDevice>, fillers: &[u64]) {
        for &k in fillers {
            kv.upsert(k, &[0xEE; 64]);
        }
        let (_, evictions) = kv.log_stats();
        assert!(evictions > 0, "filler must evict the window");
    }

    #[test]
    fn baseline_remote_get_pays_two_trips() {
        let kv = remote_store(false);
        // Targets and fillers from disjoint buckets: a filler sharing a
        // target's bucket would sit at the chain head and add record trips.
        let all = collision_free_keys(32 + 1500);
        let (keys, fillers) = all.split_at(32);
        for &k in keys {
            kv.upsert(k, &k.to_le_bytes());
        }
        evict_everything(&kv, fillers);
        let before = kv.get_stats();
        for &k in keys {
            assert_eq!(kv.read_blocking(k), Some(k.to_le_bytes().to_vec()));
        }
        let after = kv.get_stats();
        let gets = after.gets - before.gets;
        let cold = gets - (after.local_hits - before.local_hits);
        assert!(cold >= keys.len() as u64 / 2, "most GETs must go remote");
        // Probe-then-fetch: every cold GET pays the slot trip plus the
        // record trip.
        assert_eq!(after.round_trips - before.round_trips, 2 * cold);
        assert_eq!(after.chase_gets, 0);
    }

    #[test]
    fn chase_get_is_exactly_one_round_trip() {
        let kv = remote_store(true);
        let all = collision_free_keys(32 + 1500);
        let (keys, fillers) = all.split_at(32);
        for &k in keys {
            kv.upsert(k, &k.to_le_bytes());
        }
        evict_everything(&kv, fillers);
        let before = kv.get_stats();
        for &k in keys {
            assert_eq!(kv.read_blocking(k), Some(k.to_le_bytes().to_vec()));
        }
        let after = kv.get_stats();
        let gets = after.gets - before.gets;
        let cold = gets - (after.local_hits - before.local_hits);
        assert!(cold >= keys.len() as u64 / 2, "most GETs must go remote");
        // The acceptance bar: one round trip per cold GET, all of them
        // dependent reads, none falling back.
        assert_eq!(after.round_trips - before.round_trips, cold);
        assert_eq!(after.chase_gets - before.chase_gets, cold);
        assert_eq!(after.chase_fallbacks, 0);
    }

    #[test]
    fn chase_walks_bucket_collisions_and_serves_tombstones() {
        let kv = remote_store(true);
        let (older, newer) = colliding_pair();
        kv.upsert(older, b"older-value");
        kv.upsert(newer, b"newer-value");
        let dead = collision_free_keys(1)[0];
        kv.upsert(dead, b"soon-gone");
        kv.delete(dead);
        evict_everything(&kv, &(2_000_000..2_001_500).collect::<Vec<_>>());
        // The chase lands on the bucket head (`newer`); reading `older`
        // walks the chain with an extra record trip — correctness over
        // trip-count purity.
        assert_eq!(kv.read_blocking(older), Some(b"older-value".to_vec()));
        assert_eq!(kv.read_blocking(newer), Some(b"newer-value".to_vec()));
        // A tombstone fetched through the chase reads as absent.
        assert_eq!(kv.read_blocking(dead), None);
        let stats = kv.get_stats();
        assert!(stats.chase_gets >= 3);
        assert_eq!(stats.chase_fallbacks, 0);
    }

    #[test]
    fn chase_on_and_off_are_observationally_equivalent() {
        let on = remote_store(true);
        let off = remote_store(false);
        let plain = FasterKv::new(
            StoreConfig {
                memory_per_shard: 16 << 10,
                mutable_fraction: 0.25,
                index_slots: 1 << 12,
                max_value_bytes: 256,
                remote_index: None,
            },
            vec![LocalMemoryDevice::new()],
        );
        let stores = [&on, &off, &plain];
        // Mixed workload: upserts, overwrites, deletes, interleaved with
        // enough volume to spill the window.
        let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..4000u64 {
            let key = step() % 512;
            match step() % 10 {
                0 => stores.iter().for_each(|s| s.delete(key)),
                _ => {
                    let val = vec![(i % 251) as u8; 16 + (key % 48) as usize];
                    stores.iter().for_each(|s| s.upsert(key, &val));
                }
            }
        }
        let (_, ev) = on.log_stats();
        assert!(ev > 0, "workload must spill");
        for key in 0..512u64 {
            let want = plain.read_blocking(key);
            assert_eq!(on.read_blocking(key), want, "chase-on diverges at {key}");
            assert_eq!(off.read_blocking(key), want, "chase-off diverges at {key}");
        }
        assert!(
            on.get_stats().chase_gets > 0,
            "chase path must be exercised"
        );
    }
}

#[cfg(test)]
mod delete_rmw_tests {
    use super::*;
    use crate::devices::LocalMemoryDevice;

    fn store() -> FasterKv<LocalMemoryDevice> {
        FasterKv::new(
            StoreConfig {
                memory_per_shard: 16 << 10,
                mutable_fraction: 0.25,
                index_slots: 1 << 12,
                max_value_bytes: 256,
                remote_index: None,
            },
            vec![LocalMemoryDevice::new()],
        )
    }

    #[test]
    fn delete_hides_key() {
        let kv = store();
        kv.upsert(1, b"alive");
        assert_eq!(kv.read_blocking(1), Some(b"alive".to_vec()));
        kv.delete(1);
        assert_eq!(kv.read_blocking(1), None);
        // Re-insert after delete works.
        kv.upsert(1, b"back");
        assert_eq!(kv.read_blocking(1), Some(b"back".to_vec()));
    }

    #[test]
    fn deleted_key_stays_deleted_across_eviction() {
        let kv = store();
        kv.upsert(7, b"v");
        kv.delete(7);
        // Push both versions to the device.
        for k in 100..1200u64 {
            kv.upsert(k, &[1u8; 64]);
        }
        assert_eq!(kv.read_blocking(7), None, "tombstone must survive eviction");
        // A neighbour key is unaffected.
        assert_eq!(kv.read_blocking(100), Some(vec![1u8; 64]));
    }

    #[test]
    fn delete_of_missing_key_is_noop_tombstone() {
        let kv = store();
        kv.delete(42);
        assert_eq!(kv.read_blocking(42), None);
    }

    #[test]
    fn rmw_counter_semantics() {
        let kv = store();
        for _ in 0..100 {
            kv.rmw(5, |cur| {
                let n = cur
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                (n + 1).to_le_bytes().to_vec()
            });
        }
        let v = kv.read_blocking(5).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 100);
    }

    #[test]
    fn rmw_resolves_evicted_versions() {
        let kv = store();
        kv.upsert(9, &10u64.to_le_bytes());
        for k in 100..1200u64 {
            kv.upsert(k, &[2u8; 64]);
        }
        // Version of key 9 is now on the device; RMW must fetch it.
        kv.rmw(9, |cur| {
            let n = u64::from_le_bytes(cur.expect("exists").try_into().unwrap());
            (n * 3).to_le_bytes().to_vec()
        });
        let v = kv.read_blocking(9).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 30);
    }

    #[test]
    fn concurrent_rmw_from_threads_is_atomic() {
        use std::sync::Arc;
        let kv = Arc::new(store());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let kv = Arc::clone(&kv);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    kv.rmw(77, |cur| {
                        let n = cur
                            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                            .unwrap_or(0);
                        (n + 1).to_le_bytes().to_vec()
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = kv.read_blocking(77).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 2000);
    }
}

//! # kvstore — a FASTER-style hybrid-log key-value store (paper §7)
//!
//! The paper's case study ports Microsoft FASTER to Cowbird by implementing
//! an `IDevice` — FASTER's storage-layer interface for the
//! larger-than-memory part of its hybrid log. We reproduce that
//! architecture from scratch:
//!
//! * [`hlog`] — the **hybrid log**: a monotonically growing logical address
//!   space whose hot tail lives in a circular in-memory buffer; colder
//!   addresses are flushed to an [`device::Device`] and evicted. Records are
//!   never updated in place: upserts append a new version chained to the
//!   previous one.
//! * [`index`] — the **hash index**: lock-free open-addressed slots mapping
//!   a 16-bit key tag to the 48-bit log address of the newest record version
//!   (collisions resolve through the record chain, as in FASTER).
//! * [`store`] — [`store::FasterKv`]: sharded reads/upserts with
//!   asynchronous storage-miss handling (`Pending` results completed via
//!   `poll`), mirroring how FASTER threads use Cowbird's notification groups
//!   ("after issuing an I/O operation ... a thread immediately calls
//!   poll_add() and invokes poll_wait() periodically").
//! * [`device`] / [`devices`] — the IDevice abstraction and its backends:
//!   local memory (the paper's upper bound), a latency/rate-modelled SATA
//!   SSD (FASTER's default), direct one-sided RDMA (sync and async), and
//!   **Cowbird** (a `cowbird::Channel` per shard — the paper's per-thread
//!   integration).
//!
//! Simplifications vs. Microsoft FASTER, documented here deliberately:
//! keys are fixed 8-byte values (the paper's YCSB config), shards serialize
//! through a mutex instead of epoch protection, and checkpointing/recovery
//! are out of scope. The storage architecture — the part the paper
//! evaluates — is faithful.

pub mod device;
pub mod devices;
pub mod hlog;
pub mod index;
pub mod record;
pub mod store;

pub use device::{Completion, Device, Token};
pub use devices::{CowbirdDevice, LocalMemoryDevice, RdmaDevice, RdmaMode, SsdSimDevice};
pub use hlog::HybridLog;
pub use index::HashIndex;
pub use store::{FasterKv, GetStats, ReadResult, RemoteIndex, StoreConfig};

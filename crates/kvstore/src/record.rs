//! On-log record layout.
//!
//! ```text
//! offset 0   prev     u64   log address of the previous version / chain hop
//! offset 8   key      u64   the paper's 8-byte keys
//! offset 16  val_len  u32
//! offset 20  flags    u32   bit 0: tombstone (deletion marker)
//! offset 24  value    [u8; val_len], padded to 8 bytes
//! ```
//!
//! Records are immutable once written; updates append a new record whose
//! `prev` points at the old one (FASTER's hybrid-log discipline: the
//! in-memory tail is writable only until an address becomes read-only).

/// Record header size.
pub const HEADER_BYTES: u64 = 24;

/// The null log address (chain terminator). Valid log addresses start
/// above [`crate::hlog::LOG_BASE`].
pub const NULL_ADDR: u64 = 0;

/// Flags bit 0: this record is a deletion marker.
pub const FLAG_TOMBSTONE: u32 = 1;

/// A decoded record header + value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    pub prev: u64,
    pub key: u64,
    pub value: Vec<u8>,
    /// Deletion marker: the key is gone as of this version.
    pub tombstone: bool,
}

impl Record {
    /// Total on-log footprint for a value length (8-byte aligned).
    pub fn footprint(val_len: usize) -> u64 {
        (HEADER_BYTES + val_len as u64 + 7) & !7
    }

    /// Encode into `out` (must be `footprint` bytes).
    pub fn encode(&self, out: &mut [u8]) {
        let need = Self::footprint(self.value.len()) as usize;
        assert!(out.len() >= need);
        out[0..8].copy_from_slice(&self.prev.to_le_bytes());
        out[8..16].copy_from_slice(&self.key.to_le_bytes());
        out[16..20].copy_from_slice(&(self.value.len() as u32).to_le_bytes());
        let flags = if self.tombstone { FLAG_TOMBSTONE } else { 0 };
        out[20..24].copy_from_slice(&flags.to_le_bytes());
        out[24..24 + self.value.len()].copy_from_slice(&self.value);
        // Zero the padding for deterministic bytes.
        for b in &mut out[24 + self.value.len()..need] {
            *b = 0;
        }
    }

    /// Encode into a fresh vec.
    pub fn encode_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; Self::footprint(self.value.len()) as usize];
        self.encode(&mut v);
        v
    }

    /// Decode the header; returns (prev, key, val_len, flags).
    pub fn decode_header(bytes: &[u8]) -> Option<(u64, u64, u32, u32)> {
        if bytes.len() < HEADER_BYTES as usize {
            return None;
        }
        let prev = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let val_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let flags = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        Some((prev, key, val_len, flags))
    }

    /// Decode a whole record.
    pub fn decode(bytes: &[u8]) -> Option<Record> {
        let (prev, key, val_len, flags) = Self::decode_header(bytes)?;
        let end = HEADER_BYTES as usize + val_len as usize;
        if bytes.len() < end {
            return None;
        }
        Some(Record {
            prev,
            key,
            value: bytes[HEADER_BYTES as usize..end].to_vec(),
            tombstone: flags & FLAG_TOMBSTONE != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = Record {
            prev: 0xABCD,
            key: 42,
            value: b"hello world".to_vec(),
            tombstone: false,
        };
        let bytes = r.encode_vec();
        assert_eq!(bytes.len() % 8, 0);
        assert_eq!(Record::decode(&bytes), Some(r));
    }

    #[test]
    fn footprint_alignment() {
        assert_eq!(Record::footprint(0), 24);
        assert_eq!(Record::footprint(1), 32);
        assert_eq!(Record::footprint(8), 32);
        assert_eq!(Record::footprint(9), 40);
        assert_eq!(Record::footprint(64), 88);
    }

    #[test]
    fn tombstones_roundtrip() {
        let t = Record {
            prev: 7,
            key: 9,
            value: vec![],
            tombstone: true,
        };
        let bytes = t.encode_vec();
        let back = Record::decode(&bytes).unwrap();
        assert!(back.tombstone);
        assert_eq!(back, t);
    }

    #[test]
    fn truncated_bytes_rejected() {
        let r = Record {
            prev: 1,
            key: 2,
            value: vec![7; 100],
            tombstone: false,
        };
        let bytes = r.encode_vec();
        assert!(Record::decode(&bytes[..23]).is_none());
        assert!(Record::decode(&bytes[..60]).is_none());
    }
}

//! The hash index: lock-free slots mapping key tags to log addresses.
//!
//! As in FASTER, the index does not store keys — only a small tag plus the
//! address of the newest record version; full keys live in the log and
//! collisions are resolved by walking the record chain. A slot packs:
//!
//! ```text
//! [ tag: 16 bits | address: 48 bits ]
//! ```
//!
//! Updates CAS the slot so concurrent upserts never lose an address (the
//! loser retries with the new head as its `prev`).

use std::sync::atomic::{AtomicU64, Ordering};

const ADDR_BITS: u32 = 48;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// Stable 64-bit key hash (splitmix-style finalizer).
#[inline]
pub fn hash_key(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hash index.
pub struct HashIndex {
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl HashIndex {
    /// Create an index with at least `min_slots` slots (rounded up to a
    /// power of two).
    pub fn new(min_slots: usize) -> HashIndex {
        let n = min_slots.next_power_of_two().max(64);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU64::new(0));
        HashIndex {
            slots: v.into_boxed_slice(),
            mask: (n - 1) as u64,
        }
    }

    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot_and_tag(&self, key: u64) -> (usize, u64) {
        let h = hash_key(key);
        let slot = (h & self.mask) as usize;
        // Tag from the high bits; never zero so an empty slot is
        // distinguishable.
        let tag = ((h >> ADDR_BITS) | 1) & 0xFFFF;
        (slot, tag)
    }

    /// Latest address for `key`'s hash bucket, if the tag matches.
    /// (A tag match does not guarantee the key matches — the caller must
    /// verify against the record and walk its chain.)
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let (slot, tag) = self.slot_and_tag(key);
        let v = self.slots[slot].load(Ordering::Acquire);
        if v == 0 {
            return None;
        }
        if v >> ADDR_BITS == tag {
            Some(v & ADDR_MASK)
        } else {
            // A different key family owns this bucket; the caller treats it
            // as the chain head anyway (FASTER buckets are shared).
            Some(v & ADDR_MASK)
        }
    }

    /// Publish `new_addr` as the newest version for `key`'s bucket iff the
    /// current head is still `expected` (None = empty). Returns the
    /// observed head on failure so the caller can re-chain and retry.
    pub fn publish(&self, key: u64, expected: Option<u64>, new_addr: u64) -> Result<(), u64> {
        debug_assert!(new_addr <= ADDR_MASK);
        let (slot, tag) = self.slot_and_tag(key);
        let cur = match expected {
            None => 0,
            Some(addr) => {
                // Reconstruct the packed value with whatever tag is stored.
                let v = self.slots[slot].load(Ordering::Acquire);
                if v & ADDR_MASK != addr {
                    return Err(v & ADDR_MASK);
                }
                v
            }
        };
        let new = (tag << ADDR_BITS) | new_addr;
        match self.slots[slot].compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => Ok(()),
            Err(observed) => Err(observed & ADDR_MASK),
        }
    }

    /// The bucket index `key` hashes to (used to address a pool-side slot
    /// mirror: slot `i` lives at `mirror_base + i * 8`).
    pub fn slot_of(&self, key: u64) -> usize {
        self.slot_and_tag(key).0
    }

    /// The raw packed word of `slot` — `[tag:16 | address:48]`, 0 when
    /// empty. This is exactly the 8-byte pointer word a dependent-op chase
    /// dereferences: the engine masks off the tag bits.
    pub fn raw_slot(&self, slot: usize) -> u64 {
        self.slots[slot].load(Ordering::Acquire)
    }

    /// Extract the 48-bit address from a raw slot word.
    pub fn addr_of_raw(word: u64) -> u64 {
        word & ADDR_MASK
    }

    /// Occupied slot count (diagnostics).
    pub fn occupied(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lookup_is_none() {
        let idx = HashIndex::new(128);
        assert_eq!(idx.lookup(42), None);
    }

    #[test]
    fn publish_then_lookup() {
        let idx = HashIndex::new(128);
        idx.publish(42, None, 0x1000).unwrap();
        assert_eq!(idx.lookup(42), Some(0x1000));
        // Update chains forward.
        idx.publish(42, Some(0x1000), 0x2000).unwrap();
        assert_eq!(idx.lookup(42), Some(0x2000));
    }

    #[test]
    fn stale_publish_returns_observed_head() {
        let idx = HashIndex::new(128);
        idx.publish(7, None, 0x100).unwrap();
        idx.publish(7, Some(0x100), 0x200).unwrap();
        // A racer holding the old head fails and learns the new one.
        assert_eq!(idx.publish(7, Some(0x100), 0x300), Err(0x200));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(HashIndex::new(100).slots(), 128);
        assert_eq!(HashIndex::new(64).slots(), 64);
        assert_eq!(HashIndex::new(1).slots(), 64);
    }

    #[test]
    fn concurrent_publishers_never_lose_updates() {
        use std::sync::Arc;
        let idx = Arc::new(HashIndex::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let idx = Arc::clone(&idx);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = t; // all threads fight over 4 keys
                    let mut expected = idx.lookup(key);
                    loop {
                        match idx.publish(key, expected, i + 1) {
                            Ok(()) => break,
                            Err(observed) => expected = Some(observed),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for key in 0..4u64 {
            assert!(idx.lookup(key).is_some());
        }
    }
}

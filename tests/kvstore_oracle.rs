//! The FASTER-style store against a `HashMap` oracle, under eviction
//! pressure, over both a local device and the full Cowbird stack.

use std::collections::HashMap;

use kvstore::{CowbirdDevice, Device, FasterKv, LocalMemoryDevice, StoreConfig};
use proptest::prelude::*;
use simnet::rng::Rng;

fn tiny_cfg() -> StoreConfig {
    StoreConfig {
        memory_per_shard: 8 << 10, // 8 KiB window: constant eviction
        mutable_fraction: 0.25,
        index_slots: 1 << 10,
        max_value_bytes: 64,
        remote_index: None,
    }
}

#[derive(Clone, Debug)]
enum KvOp {
    Upsert { key: u8, val: u8, len: u8 },
    Read { key: u8 },
}

fn arb_kv_op() -> impl Strategy<Value = KvOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), 0u8..64).prop_map(|(key, val, len)| KvOp::Upsert {
            key,
            val,
            len
        }),
        any::<u8>().prop_map(|key| KvOp::Read { key }),
    ]
}

fn run_against_oracle<D: Device>(kv: &FasterKv<D>, ops: &[KvOp]) {
    let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            KvOp::Upsert { key, val, len } => {
                let v = vec![val; len as usize];
                kv.upsert(key as u64, &v);
                oracle.insert(key as u64, v);
            }
            KvOp::Read { key } => {
                let got = kv.read_blocking(key as u64);
                assert_eq!(got.as_ref(), oracle.get(&(key as u64)), "op {i}: key {key}");
            }
        }
    }
    // Full verification at the end.
    for (k, v) in &oracle {
        assert_eq!(kv.read_blocking(*k).as_ref(), Some(v), "final key {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_hashmap_oracle_under_eviction(
        ops in proptest::collection::vec(arb_kv_op(), 1..300),
    ) {
        let kv = FasterKv::new(tiny_cfg(), vec![LocalMemoryDevice::new()]);
        run_against_oracle(&kv, &ops);
    }

    #[test]
    fn sharded_store_matches_oracle(
        ops in proptest::collection::vec(arb_kv_op(), 1..200),
    ) {
        let kv = FasterKv::new(
            tiny_cfg(),
            (0..3).map(|_| LocalMemoryDevice::new()).collect(),
        );
        run_against_oracle(&kv, &ops);
    }
}

/// The same oracle discipline over the full emulated Cowbird stack: the
/// store's device reads/writes travel through the offload engine.
#[test]
fn store_over_cowbird_matches_oracle() {
    use cowbird::channel::Channel;
    use cowbird::layout::ChannelLayout;
    use cowbird::region::{RegionMap, RemoteRegion};
    use cowbird_engine::core::EngineConfig;
    use cowbird_engine::spot::{SpotAgent, SpotWiring};
    use rdma::emu::EmuFabric;
    use rdma::mem::Region;

    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let engine = fabric.add_nic();
    let pool = fabric.add_nic();
    let pool_mem = Region::new(8 << 20);
    let pool_rkey = pool.register(pool_mem);
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 8 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let channel = Channel::new(0, layout, regions.clone());
    let channel_rkey = compute.register(channel.region().clone());
    let (eng_c, _) = fabric.connect(&engine, &compute);
    let (eng_p, _) = fabric.connect(&engine, &pool);
    let _agent = SpotAgent::spawn(
        SpotWiring {
            nic: engine,
            compute_qpn: eng_c,
            pool_qpn: eng_p,
            channel_rkey,
        },
        EngineConfig::spot(layout, regions, 16),
    );

    let kv = FasterKv::new(tiny_cfg(), vec![CowbirdDevice::new(channel, 1)]);
    // A deterministic random workload (proptest would spin up a fabric per
    // case; one long deterministic run covers the same ground).
    let mut rng = Rng::new(99);
    let mut ops = Vec::new();
    for _ in 0..800 {
        if rng.chance(0.6) {
            ops.push(KvOp::Upsert {
                key: rng.next_below(64) as u8,
                val: rng.next_below(256) as u8,
                len: rng.next_below(64) as u8,
            });
        } else {
            ops.push(KvOp::Read {
                key: rng.next_below(64) as u8,
            });
        }
    }
    run_against_oracle(&kv, &ops);
}

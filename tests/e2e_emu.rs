//! End-to-end integration over the real-thread emulated fabric: compute
//! node + Cowbird-Spot agent + memory pool, exercising the full public API
//! across crates.

use cowbird::channel::Channel;
use cowbird::error::IssueError;
use cowbird::layout::ChannelLayout;
use cowbird::poll::PollGroup;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::core::EngineConfig;
use cowbird_engine::spot::{SpotAgent, SpotWiring};
use rdma::emu::{EmuFabric, EmuNic};
use rdma::mem::Region;

struct Deployment {
    _fabric: EmuFabric,
    pool_mem: Region,
    agents: Vec<SpotAgent>,
    channels: Vec<Channel>,
    _compute: EmuNic,
}

/// Deploy `n` channels, each with its own engine agent, over one pool.
fn deploy(n: usize, layout: ChannelLayout, batch: usize) -> Deployment {
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let pool = fabric.add_nic();
    let pool_mem = Region::new(8 << 20);
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 8 << 20,
        },
    );
    let mut agents = Vec::new();
    let mut channels = Vec::new();
    for cid in 0..n {
        let channel = Channel::new(cid as u16, layout, regions.clone());
        let channel_rkey = compute.register(channel.region().clone());
        let engine = fabric.add_nic();
        let (eng_c, _) = fabric.connect(&engine, &compute);
        let (eng_p, _) = fabric.connect(&engine, &pool);
        agents.push(SpotAgent::spawn(
            SpotWiring {
                nic: engine,
                compute_qpn: eng_c,
                pool_qpn: eng_p,
                channel_rkey,
            },
            EngineConfig::spot(layout, regions.clone(), batch),
        ));
        channels.push(channel);
    }
    Deployment {
        _fabric: fabric,
        pool_mem,
        agents,
        channels,
        _compute: compute,
    }
}

#[test]
fn write_then_read_roundtrip_through_engine() {
    let mut d = deploy(1, ChannelLayout::default_sizes(), 8);
    let ch = &mut d.channels[0];
    let w = ch.async_write(1, 1000, b"integration").unwrap();
    assert!(ch.wait(w, u64::MAX));
    assert_eq!(d.pool_mem.read_vec(1000, 11).unwrap(), b"integration");
    let h = ch.async_read(1, 1000, 11).unwrap();
    assert!(ch.wait(h.id, u64::MAX));
    assert_eq!(ch.take_response(&h).unwrap(), b"integration");
}

#[test]
fn read_after_write_ordering_without_waiting() {
    // Issue W then R back-to-back with no intermediate wait: per-channel
    // linearizability guarantees the read observes the write.
    let mut d = deploy(1, ChannelLayout::default_sizes(), 8);
    let ch = &mut d.channels[0];
    for round in 0..200u64 {
        let addr = (round % 17) * 64;
        let val = round.to_le_bytes();
        let _w = ch.async_write(1, addr, &val).unwrap();
        let h = ch.async_read(1, addr, 8).unwrap();
        assert!(ch.wait(h.id, u64::MAX), "round {round}");
        assert_eq!(
            ch.take_response(&h).unwrap(),
            val,
            "round {round}: read must observe preceding write"
        );
    }
}

#[test]
fn ring_backpressure_resolves_under_load() {
    // Tiny rings force MetadataRingFull / data-ring-full paths; the
    // retry-after-drain discipline must always make progress.
    let layout = ChannelLayout {
        meta_entries: 8,
        wdata_capacity: 512,
        rdata_capacity: 512,
    };
    let mut d = deploy(1, layout, 4);
    let ch = &mut d.channels[0];
    let mut done = 0u64;
    let mut retries = 0u64;
    let mut outstanding: Vec<cowbird::channel::ReadHandle> = Vec::new();
    while done < 500 {
        match ch.async_read(1, (done % 64) * 64, 48) {
            Ok(h) => outstanding.push(h),
            Err(e) => {
                assert!(e.is_retryable(), "unexpected {e}");
                retries += 1;
                // Drain one completed response to free space.
                ch.refresh();
                let mut i = 0;
                while i < outstanding.len() {
                    if ch.is_complete(outstanding[i].id) {
                        let h = outstanding.swap_remove(i);
                        ch.take_response(&h).unwrap();
                        done += 1;
                    } else {
                        i += 1;
                    }
                }
                std::thread::yield_now();
            }
        }
    }
    assert!(retries > 0, "test must actually hit backpressure");
}

#[test]
fn oversized_request_rejected_cleanly() {
    let layout = ChannelLayout::tiny();
    let mut d = deploy(1, layout, 4);
    let ch = &mut d.channels[0];
    let err = ch.async_read(1, 0, 4096).unwrap_err();
    assert!(matches!(err, IssueError::RequestTooLarge { .. }));
    // The channel still works afterwards.
    let h = ch.async_read(1, 0, 32).unwrap();
    assert!(ch.wait(h.id, u64::MAX));
}

/// One read's lifecycle — issued on the compute node, executed and written
/// back on the engine node, completed on the compute node — reconstructs
/// as a single request-scoped span from the merged flight-recorder dump.
#[test]
fn request_span_reconstructs_across_nodes() {
    use telemetry::{EventKind, Telemetry};

    let hub = Telemetry::new(1024);
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let pool = fabric.add_nic();
    let pool_mem = Region::new(1 << 20);
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let mut ch = Channel::new(0, layout, regions.clone());
    ch.set_recorder(hub.recorder(0, "compute"));
    let channel_rkey = compute.register(ch.region().clone());
    let engine = fabric.add_nic();
    let (eng_c, _) = fabric.connect(&engine, &compute);
    let (eng_p, _) = fabric.connect(&engine, &pool);
    let agent = SpotAgent::spawn(
        SpotWiring {
            nic: engine,
            compute_qpn: eng_c,
            pool_qpn: eng_p,
            channel_rkey,
        },
        EngineConfig::spot(layout, regions, 8)
            .with_recorder(hub.recorder(1, "engine"))
            .with_channel_id(0),
    );

    let w = ch.async_write(1, 512, b"span").unwrap();
    assert!(ch.wait(w, u64::MAX));
    let h = ch.async_read(1, 512, 4).unwrap();
    assert!(ch.wait(h.id, u64::MAX));
    assert_eq!(ch.take_response(&h).unwrap(), b"span");
    agent.stop();

    let dump = hub.dump();
    telemetry::json::validate(&dump.to_chrome_json()).expect("chrome trace must be valid JSON");
    assert!(dump.nodes_seen().contains(&0) && dump.nodes_seen().contains(&1));

    // The read's span: both nodes touched it, bracketed by the client-side
    // issue and completion, with the engine's pool verb in between.
    let spans = telemetry::spans(&dump.events);
    let read = spans
        .iter()
        .find(|s| s.req == h.id.raw())
        .expect("the read must reconstruct as a span");
    assert_eq!(read.nodes(), vec![0, 1], "client first, then engine");
    assert_eq!(read.events.first().unwrap().kind, EventKind::ReadIssued);
    assert_eq!(
        read.events.last().unwrap().kind,
        EventKind::RequestCompleted
    );
    assert!(
        read.events
            .iter()
            .any(|e| e.kind == EventKind::ReadExecuted && e.node == 1),
        "the engine's pool read must join the client's span"
    );

    // The write reconstructs too, stamped with the same ReqId the client got.
    assert!(
        spans.iter().any(|s| {
            s.req == w.raw()
                && s.events
                    .iter()
                    .any(|e| e.kind == EventKind::WriteExecuted && e.node == 1)
        }),
        "the write's engine-side execution must join its span"
    );
}

#[test]
fn concurrent_channels_from_many_threads() {
    let n = 4;
    let d = deploy(n, ChannelLayout::default_sizes(), 16);
    let pool = d.pool_mem.clone();
    let handles: Vec<_> = d
        .channels
        .into_iter()
        .enumerate()
        .map(|(t, mut ch)| {
            std::thread::spawn(move || {
                // Each thread owns a disjoint 64 KiB arena.
                let base = (t as u64) * 65536;
                let mut group = PollGroup::new();
                let mut handles = Vec::new();
                for i in 0..256u64 {
                    let w = ch
                        .async_write(1, base + (i % 128) * 64, &(i + t as u64).to_le_bytes())
                        .unwrap();
                    assert!(ch.wait(w, u64::MAX));
                    let h = ch.async_read(1, base + (i % 128) * 64, 8).unwrap();
                    group.add(h.id);
                    handles.push((i, h));
                    if handles.len() >= 16 {
                        let mut got = 0;
                        while got < handles.len() {
                            got += group
                                .poll_wait_timeout(&mut ch, 16, u64::MAX)
                                .expect("engine alive")
                                .len();
                        }
                        for (i, h) in handles.drain(..) {
                            let v = ch.take_response(&h).unwrap();
                            assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i + t as u64);
                        }
                    }
                }
                ch.stats
            })
        })
        .collect();
    for h in handles {
        let stats = h.join().unwrap();
        assert_eq!(stats.writes_issued, 256);
    }
    // Pool holds the final values of each thread's arena.
    for t in 0..n as u64 {
        let v = pool.read_vec(t * 65536 + 127 * 64, 8).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), 255 + t);
    }
    for a in d.agents {
        let s = a.stop();
        assert_eq!(s.writes_executed, 256);
        assert_eq!(s.reads_executed, 256);
    }
}

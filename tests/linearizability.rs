//! Linearizability property tests (paper §4.2 / §5.3): random operation
//! sequences against a sequential oracle.
//!
//! Cowbird promises per-type linearizability plus read-after-write
//! consistency within a channel: a read issued after a write to an
//! overlapping address must observe that write, even while both are in
//! flight. We drive random sequences through the *packet-level* engine
//! (both variants — the P4 pause-all gate and the Spot range gate) and
//! compare every read's result against a flat oracle memory updated in
//! issue order.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::core::EngineConfig;
use cowbird_engine::sim::{ComputeNicNode, EngineNode, PoolNode};
use proptest::prelude::*;
use rdma::mem::Region;
use simnet::link::LinkParams;
use simnet::sim::{NodeId, Sim};
use simnet::time::Duration;

#[derive(Clone, Debug)]
enum Op {
    /// Write `pattern` repeated over `len` bytes at slot*64.
    Write { slot: u8, pattern: u8, len: u8 },
    /// Read `len` bytes at slot*64.
    Read { slot: u8, len: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, any::<u8>(), 1u8..64).prop_map(|(slot, pattern, len)| Op::Write {
            slot,
            pattern,
            len
        }),
        (0u8..16, 1u8..64).prop_map(|(slot, len)| Op::Read { slot, len }),
    ]
}

/// Build a sim with channel ops driven from outside (pure memory ops).
fn build(seed: u64, batch: usize) -> (Sim, Channel, Region) {
    let mut sim = Sim::new(seed);
    let compute_id = NodeId(0);
    let engine_id = NodeId(1);
    let pool_id = NodeId(2);

    let pool_mem = Region::new(1 << 16);
    let mut pool = PoolNode::new();
    let pool_rkey = pool.register(pool_mem.clone());
    pool.create_qp(201, 102, engine_id);

    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 16,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let channel = Channel::new(0, layout, regions.clone());
    let mut compute = ComputeNicNode::new();
    let rkey = compute.register(channel.region().clone());
    compute.create_qp(301, 101, engine_id);
    compute.create_qp(302, 103, engine_id);

    let mut engine = EngineNode::new();
    let cfg = if batch <= 1 {
        EngineConfig::p4(layout, regions)
    } else {
        EngineConfig::spot(layout, regions, batch)
    };
    engine.add_instance(
        cfg.with_probe_interval(Duration::from_micros(1)),
        compute_id,
        pool_id,
        (101, 301, 102, 201, 103, 302),
        rkey,
    );

    sim.add_node(Box::new(compute));
    sim.add_node(Box::new(engine));
    sim.add_node(Box::new(pool));
    sim.connect(compute_id, engine_id, LinkParams::rack_100g());
    sim.connect(engine_id, pool_id, LinkParams::rack_100g());
    (sim, channel, pool_mem)
}

/// [`build`] plus a standby engine on a fourth node: the primary is crashed
/// by a fault script at `crash_at` and the standby adopts the channel
/// `takeover` later (see `cowbird_engine::core`'s failover section).
fn build_failover(
    seed: u64,
    batch: usize,
    crash_at: Duration,
    takeover: Duration,
) -> (Sim, Channel, Region) {
    let mut sim = Sim::new(seed);
    let compute_id = NodeId(0);
    let engine_id = NodeId(1);
    let pool_id = NodeId(2);
    let standby_id = NodeId(3);

    let pool_mem = Region::new(1 << 16);
    let mut pool = PoolNode::new();
    let pool_rkey = pool.register(pool_mem.clone());
    pool.create_qp(201, 102, engine_id);
    pool.create_qp(211, 112, standby_id);

    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 16,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let channel = Channel::new(0, layout, regions.clone());
    let mut compute = ComputeNicNode::new();
    let rkey = compute.register(channel.region().clone());
    compute.create_qp(301, 101, engine_id);
    compute.create_qp(302, 103, engine_id);
    compute.create_qp(311, 111, standby_id);
    compute.create_qp(312, 113, standby_id);

    let cfg = if batch <= 1 {
        EngineConfig::p4(layout, regions)
    } else {
        EngineConfig::spot(layout, regions, batch)
    };
    let cfg = cfg.with_probe_interval(Duration::from_micros(1));
    let mut engine = EngineNode::new();
    engine.add_instance(
        cfg.clone(),
        compute_id,
        pool_id,
        (101, 301, 102, 201, 103, 302),
        rkey,
    );
    let mut standby = EngineNode::new();
    standby.add_standby_instance(
        cfg,
        compute_id,
        pool_id,
        (111, 311, 112, 211, 113, 312),
        rkey,
        crash_at + takeover,
    );

    sim.add_node(Box::new(compute));
    sim.add_node(Box::new(engine));
    sim.add_node(Box::new(pool));
    sim.add_node(Box::new(standby));
    sim.connect(compute_id, engine_id, LinkParams::rack_100g());
    sim.connect(engine_id, pool_id, LinkParams::rack_100g());
    sim.connect(compute_id, standby_id, LinkParams::rack_100g());
    sim.connect(standby_id, pool_id, LinkParams::rack_100g());
    sim.schedule_fault(
        simnet::time::Instant::ZERO + crash_at,
        simnet::fault::FaultEvent::NodeDown(engine_id),
    );
    (sim, channel, pool_mem)
}

type PendingReads = Vec<(cowbird::channel::ReadHandle, Vec<u8>)>;

/// Issue everything back-to-back — no waiting — updating the oracle in
/// issue order. Returns the reads with their expected results.
fn issue_all(ops: &[Op], ch: &mut Channel, oracle: &mut [u8]) -> PendingReads {
    let mut reads = Vec::new();
    for op in ops {
        match *op {
            Op::Write { slot, pattern, len } => {
                let addr = slot as u64 * 64;
                let data = vec![pattern; len as usize];
                // Ring-full can only occur with absurd op counts here.
                let _ = ch.async_write(1, addr, &data).expect("issue write");
                oracle[addr as usize..addr as usize + len as usize].fill(pattern);
            }
            Op::Read { slot, len } => {
                let addr = slot as u64 * 64;
                let h = ch.async_read(1, addr, len as u32).expect("issue read");
                let expect = oracle[addr as usize..addr as usize + len as usize].to_vec();
                reads.push((h, expect));
            }
        }
    }
    reads
}

fn verify_reads(ch: &mut Channel, reads: &PendingReads, oracle: &[u8], pool_mem: &Region) {
    for (i, (h, expect)) in reads.iter().enumerate() {
        assert!(ch.is_complete(h.id), "read {i} incomplete");
        let got = ch.take_response(h).expect("take");
        assert_eq!(&got, expect, "read {i}: linearizability violated");
    }
    // And the pool converged to the oracle's final state.
    let final_pool = pool_mem.read_vec(0, 16 * 64).unwrap();
    assert_eq!(&final_pool[..], &oracle[..16 * 64], "final pool state");
}

/// Run a sequence and check every read against the oracle.
fn check(ops: &[Op], batch: usize, seed: u64) {
    let (mut sim, mut ch, pool_mem) = build(seed, batch);
    let mut oracle = vec![0u8; 1 << 16];
    let reads = issue_all(ops, &mut ch, &mut oracle);
    sim.run_for(Duration::from_millis(50));
    verify_reads(&mut ch, &reads, &oracle, &pool_mem);
}

/// Run a sequence while the primary engine is crashed at an arbitrary point
/// of the execution and a standby takes over. Per-type linearizability and
/// read-after-write consistency must hold *across* the takeover, and every
/// request must complete exactly once.
fn check_crash(ops: &[Op], batch: usize, seed: u64, crash_ns: u64) {
    let crash_at = Duration::from_nanos(crash_ns);
    let takeover = Duration::from_micros(5);
    let (mut sim, mut ch, pool_mem) = build_failover(seed, batch, crash_at, takeover);
    let mut oracle = vec![0u8; 1 << 16];
    let reads = issue_all(ops, &mut ch, &mut oracle);
    let issued_reads = reads.len() as u64;
    let issued_writes = ops.len() as u64 - issued_reads;
    sim.run_for(Duration::from_millis(100));
    verify_reads(&mut ch, &reads, &oracle, &pool_mem);
    // Exactly once: the progress counters land exactly on the issue counts —
    // a lost request would leave them short (some read above would already
    // have failed), a duplicated completion would overshoot.
    ch.refresh();
    assert_eq!(ch.progress(cowbird::reqid::OpType::Read), issued_reads);
    assert_eq!(ch.progress(cowbird::reqid::OpType::Write), issued_writes);
    // The standby's takeover is visible to the client as a bumped epoch.
    assert_eq!(ch.engine_epoch(), 1, "standby epoch not adopted");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn spot_engine_is_linearizable(ops in proptest::collection::vec(arb_op(), 1..60), seed in any::<u64>()) {
        check(&ops, 16, seed);
    }

    #[test]
    fn p4_engine_is_linearizable(ops in proptest::collection::vec(arb_op(), 1..60), seed in any::<u64>()) {
        check(&ops, 1, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Crash the primary engine at a random instant of the execution — from
    /// "nothing probed yet" to "everything already completed" — and require
    /// the history to stay linearizable with exactly-once completion.
    #[test]
    fn spot_engine_linearizable_across_engine_crash(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in any::<u64>(),
        crash_ns in 0u64..30_000,
    ) {
        check_crash(&ops, 16, seed, crash_ns);
    }
}

/// The crash-recovery version of the same-address hammer: the takeover must
/// not let a read slip past the write that precedes it in issue order, even
/// when both straddle the crash.
#[test]
fn crash_midstream_preserves_read_after_write() {
    let mut ops = Vec::new();
    for i in 0..40u8 {
        ops.push(Op::Write {
            slot: i % 8,
            pattern: i,
            len: 63,
        });
        ops.push(Op::Read {
            slot: i % 8,
            len: 63,
        });
    }
    check_crash(&ops, 16, 5, 3_000);
    check_crash(&ops, 1, 6, 8_000);
}

/// The adversarial case the gates exist for: alternating writes and reads
/// on the same address, where a stale read would be visible.
#[test]
fn hammer_same_address_read_after_write() {
    let mut ops = Vec::new();
    for i in 0..50u8 {
        ops.push(Op::Write {
            slot: 0,
            pattern: i,
            len: 63,
        });
        ops.push(Op::Read { slot: 0, len: 63 });
    }
    check(&ops, 16, 1);
    check(&ops, 1, 2);
}

/// Writes to overlapping ranges with interleaved reads across the overlap.
#[test]
fn overlapping_ranges_with_reads() {
    let ops = vec![
        Op::Write {
            slot: 0,
            pattern: 0xAA,
            len: 63,
        },
        Op::Write {
            slot: 1,
            pattern: 0xBB,
            len: 63,
        },
        Op::Read { slot: 0, len: 63 },
        Op::Write {
            slot: 0,
            pattern: 0xCC,
            len: 32,
        },
        Op::Read { slot: 0, len: 63 },
        Op::Read { slot: 1, len: 32 },
    ];
    check(&ops, 16, 3);
    check(&ops, 1, 4);
}

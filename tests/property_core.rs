//! Property-based tests over the core data structures and codecs
//! (proptest): wire format, request ids, metadata blocks, ring
//! reservation, registered memory, histograms, and the Zipf sampler.

use proptest::prelude::*;

use cowbird::layout::reserve_no_wrap;
use cowbird::meta::{ChaseParams, RequestMeta, RwType, CHASE_BUDGET_MAX, CHASE_STRIDE_MAX};
use cowbird::reqid::{OpType, ReqId};
use rdma::mem::Region;
use rdma::wire::{Aeth, AtomicEth, Bth, Opcode, Reth, RocePacket};
use simnet::rng::Rng;
use simnet::stats::Histogram;
use workloads::zipf::ZipfSampler;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::SendOnly),
        Just(Opcode::WriteFirst),
        Just(Opcode::WriteMiddle),
        Just(Opcode::WriteLast),
        Just(Opcode::WriteOnly),
        Just(Opcode::ReadRequest),
        Just(Opcode::ReadResponseFirst),
        Just(Opcode::ReadResponseMiddle),
        Just(Opcode::ReadResponseLast),
        Just(Opcode::ReadResponseOnly),
        Just(Opcode::Acknowledge),
        Just(Opcode::AtomicAcknowledge),
        Just(Opcode::CompareSwap),
    ]
}

proptest! {
    #[test]
    fn roce_packet_roundtrips(
        opcode in arb_opcode(),
        qp in 0u32..0x0100_0000,
        psn in 0u32..0x0100_0000,
        vaddr in any::<u64>(),
        rkey in any::<u32>(),
        dma_len in any::<u32>(),
        msn in 0u32..0x0100_0000,
        swap in any::<u64>(),
        compare in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let no_payload = (opcode.has_reth()
            && opcode != Opcode::WriteFirst
            && opcode != Opcode::WriteOnly)
            || opcode.has_atomic_eth()
            || opcode.has_atomic_ack_eth();
        let pkt = RocePacket {
            bth: Bth::new(opcode, qp, psn),
            reth: opcode.has_reth().then_some(Reth { vaddr, rkey, dma_len }),
            aeth: opcode.has_aeth().then_some(Aeth::ack(msn)),
            atomic: opcode
                .has_atomic_eth()
                .then_some(AtomicEth { vaddr, rkey, swap, compare }),
            atomic_ack: opcode.has_atomic_ack_eth().then_some(swap),
            payload: if no_payload { vec![] } else { payload }.into(),
        };
        let bytes = pkt.encode();
        let parsed = RocePacket::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn parsing_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = RocePacket::parse(&bytes);
    }

    #[test]
    fn reqid_roundtrips(channel in 0u16..0x8000, seq in 1u64..(1 << 48), write in any::<bool>()) {
        let op = if write { OpType::Write } else { OpType::Read };
        let id = ReqId::new(op, channel, seq);
        prop_assert_eq!(id.op(), op);
        prop_assert_eq!(id.channel(), channel);
        prop_assert_eq!(id.seq(), seq);
        prop_assert_eq!(ReqId::from_raw(id.raw()), id);
        // Completion check is exactly the seq comparison.
        prop_assert_eq!(id.completed_by(seq), true);
        prop_assert_eq!(id.completed_by(seq - 1), false);
    }

    #[test]
    fn request_meta_roundtrips(
        kind in 0u8..4,
        req_addr in any::<u64>(),
        resp_addr in any::<u64>(),
        length in any::<u32>(),
        region_id in any::<u16>(),
        offset_of_ptr in any::<u8>(),
        stride in 0u16..=CHASE_STRIDE_MAX,
        budget in 0u8..=CHASE_BUDGET_MAX,
        idx in 0u64..(1 << 40),
    ) {
        let rw_type = match kind {
            0 => RwType::Read,
            1 => RwType::Write,
            2 => RwType::ReadIndirect,
            _ => RwType::Chase,
        };
        // The chase bits live in words 0 and 3 alongside every other
        // field; plain reads/writes must leave them zero on the wire.
        let chase = if rw_type.is_chase() {
            ChaseParams { offset_of_ptr, stride, budget }
        } else {
            ChaseParams::default()
        };
        let m = RequestMeta {
            rw_type,
            req_addr,
            resp_addr,
            length,
            region_id,
            chase,
        };
        let body = m.body_words();
        let words = [m.publication_word(idx), body[0], body[1], body[2]];
        prop_assert_eq!(RequestMeta::decode(words, idx), Some(m));
        // A stale/foreign index never decodes.
        prop_assert_eq!(RequestMeta::decode(words, idx + 1), None);
    }

    #[test]
    fn ring_reservation_invariants(
        ops in proptest::collection::vec((1u64..300, any::<bool>()), 1..200),
        capacity in 256u64..2048,
    ) {
        // Simulate reserve/free cycles; reservations must stay in capacity,
        // never wrap the ring boundary, and never overlap live data.
        let mut tail = 0u64;
        let mut head = 0u64;
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (len, free_one) in ops {
            if free_one && !live.is_empty() {
                let (_s, e) = live.remove(0);
                head = e;
                continue;
            }
            if let Some((start, end)) = reserve_no_wrap(tail, head, capacity, len) {
                // Fits in the window.
                prop_assert!(end - head <= capacity);
                // Never straddles the physical boundary.
                prop_assert!(start % capacity + len <= capacity);
                // Monotone.
                prop_assert!(start >= tail);
                // No overlap with live reservations (physical).
                for &(s, e) in &live {
                    let (ps, pe) = (s % capacity, (e - 1) % capacity);
                    let (qs, qe) = (start % capacity, (end.max(start + 1) - 1) % capacity);
                    if len > 0 && e > s {
                        let disjoint = pe < qs || qe < ps;
                        prop_assert!(disjoint || (ps <= pe && qs <= qe && (pe < qs || qe < ps)),
                            "overlap: live ({ps},{pe}) vs new ({qs},{qe})");
                    }
                }
                live.push((start, end));
                tail = end;
            }
        }
    }

    #[test]
    fn region_matches_vec_oracle(
        writes in proptest::collection::vec(
            (0u64..1000, proptest::collection::vec(any::<u8>(), 1..64)),
            1..40
        ),
    ) {
        let region = Region::new(1064);
        let mut oracle = vec![0u8; 1064];
        for (off, data) in &writes {
            region.write(*off, data).unwrap();
            oracle[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let got = region.read_vec(0, 1064).unwrap();
        prop_assert_eq!(got, oracle);
    }

    #[test]
    fn histogram_quantiles_match_exact_within_error(
        samples in proptest::collection::vec(1u64..10_000_000, 10..500),
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[(((q * sorted.len() as f64).ceil() as usize).max(1) - 1).min(sorted.len() - 1)];
            let est = h.quantile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err < 0.04, "q{q}: est {est} vs exact {exact}");
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn zipf_stays_in_range(n in 1u64..1_000_000, theta in 0.01f64..0.999, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
            let s = z.sample_scrambled(&mut rng);
            prop_assert!(s < n);
        }
    }

    #[test]
    fn rng_range_is_uniformly_bounded(lo in 0u64..1000, span in 1u64..1000, seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            let v = rng.range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }
}

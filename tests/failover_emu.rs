//! End-to-end engine failover over the real-thread emulated fabric: a
//! Cowbird-Spot agent is killed (or frozen) mid-workload, the client detects
//! the stall, fences the dead epoch, and attaches a standby that adopts the
//! channel from the red bookkeeping block. Every request must complete
//! exactly once, reads must still observe the writes that precede them in
//! issue order, and a zombie predecessor must be rejected by the epoch
//! fence.

use cowbird::channel::Channel;
use cowbird::error::WaitError;
use cowbird::layout::ChannelLayout;
use cowbird::poll::PollGroup;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird::reqid::OpType;
use cowbird_engine::core::EngineConfig;
use cowbird_engine::spot::{SpotAgent, SpotWiring};
use rdma::emu::{EmuFabric, EmuNic};
use rdma::mem::{Region, Rkey};

/// One channel plus the spare parts needed to attach standby engines.
struct Rig {
    fabric: EmuFabric,
    ch: Channel,
    pool_mem: Region,
    agent: Option<SpotAgent>,
    compute: EmuNic,
    pool: EmuNic,
    channel_rkey: Rkey,
    layout: ChannelLayout,
    regions: RegionMap,
}

impl Rig {
    /// Attach a standby engine on a fresh NIC (a different VM): new QPs to
    /// the compute node and the pool, adopting the channel from the red
    /// block.
    fn standby(&mut self) -> SpotAgent {
        let nic = self.fabric.add_nic();
        let (c_qpn, _) = self.fabric.connect(&nic, &self.compute);
        let (p_qpn, _) = self.fabric.connect(&nic, &self.pool);
        SpotAgent::spawn_standby(
            SpotWiring {
                nic,
                compute_qpn: c_qpn,
                pool_qpn: p_qpn,
                channel_rkey: self.channel_rkey,
            },
            EngineConfig::spot(self.layout, self.regions.clone(), 16),
        )
    }
}

fn deploy() -> Rig {
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let engine = fabric.add_nic();
    let pool = fabric.add_nic();

    let pool_mem = Region::new(1 << 20);
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let ch = Channel::new(0, layout, regions.clone());
    let channel_rkey = compute.register(ch.region().clone());

    let (eng_c, _) = fabric.connect(&engine, &compute);
    let (eng_p, _) = fabric.connect(&engine, &pool);
    let agent = SpotAgent::spawn(
        SpotWiring {
            nic: engine,
            compute_qpn: eng_c,
            pool_qpn: eng_p,
            channel_rkey,
        },
        EngineConfig::spot(layout, regions.clone(), 16),
    );
    Rig {
        fabric,
        ch,
        pool_mem,
        agent: Some(agent),
        compute,
        pool,
        channel_rkey,
        layout,
        regions,
    }
}

/// Kill the primary mid-workload with requests in flight; the client
/// detects the stall, fences, attaches a standby, and every one of the
/// pipelined write+read pairs completes exactly once with read-after-write
/// intact across the takeover.
#[test]
fn kill_mid_workload_standby_completes_everything_exactly_once() {
    const PAIRS: u64 = 64;
    let mut rig = deploy();
    let mut group = PollGroup::new();
    let mut reads = Vec::new();

    let issue_pair = |ch: &mut Channel, group: &mut PollGroup, reads: &mut Vec<_>, i: u64| {
        let addr = i * 64;
        let w = ch
            .async_write(1, addr, &(i ^ 0xABCD).to_le_bytes())
            .unwrap();
        let r = ch.async_read(1, addr, 8).unwrap();
        group.add(w);
        group.add(r.id);
        reads.push((i, r));
    };

    // First tranche; wait until the engine is demonstrably mid-stream.
    for i in 0..20 {
        issue_pair(&mut rig.ch, &mut group, &mut reads, i);
    }
    while {
        rig.ch.refresh();
        rig.ch.progress(OpType::Read) < 5
    } {
        std::thread::yield_now();
    }

    // Revocation without warning: in-flight work is abandoned.
    let dead = rig.agent.take().unwrap().kill();
    assert!(!dead.fenced, "killed, not fenced");

    // Keep issuing against the dead engine.
    for i in 20..PAIRS {
        issue_pair(&mut rig.ch, &mut group, &mut reads, i);
    }

    // Collect until the progress-stall watchdog trips.
    let mut done = 0usize;
    let total = 2 * PAIRS as usize;
    loop {
        match group.poll_wait_timeout(&mut rig.ch, total - done, 200_000) {
            Ok(ids) => done += ids.len(),
            Err(WaitError::EngineStalled { .. }) => break,
            Err(e) => panic!("unexpected wait error: {e}"),
        }
        assert!(done < total, "dead engine cannot finish the workload");
    }

    // Fence the dead epoch and fail over.
    assert_eq!(rig.ch.fence_engine(), 1);
    let standby = rig.standby();
    while done < total {
        match group.poll_wait_timeout(&mut rig.ch, total - done, 200_000) {
            Ok(ids) => done += ids.len(),
            // The standby may still be adopting; keep waiting.
            Err(WaitError::EngineStalled { .. }) => continue,
            Err(e) => panic!("unexpected wait error: {e}"),
        }
    }

    // Read-after-write holds across the takeover.
    for (i, r) in &reads {
        let v = rig.ch.take_response(r).unwrap();
        assert_eq!(
            u64::from_le_bytes(v.try_into().unwrap()),
            i ^ 0xABCD,
            "pair {i}"
        );
    }
    // Exactly once: progress counters land exactly on the issue counts and
    // the pool holds every final value.
    rig.ch.refresh();
    assert_eq!(rig.ch.progress(OpType::Read), PAIRS);
    assert_eq!(rig.ch.progress(OpType::Write), PAIRS);
    assert_eq!(rig.ch.engine_epoch(), 1, "takeover epoch must be visible");
    for i in 0..PAIRS {
        let v = rig.pool_mem.read_vec(i * 64, 8).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i ^ 0xABCD);
    }
    let st = standby.stop();
    assert_eq!(st.adoptions, 1);
    assert!(!st.fenced);
}

/// A frozen (not dead) primary: the standby takes over, and when the zombie
/// thaws its first probe sees the client fence word above its epoch — it
/// stands down without completing anything post-takeover.
#[test]
fn thawed_zombie_is_fenced_out_after_takeover() {
    let mut rig = deploy();
    // Warm up, then freeze.
    let h = rig.ch.async_read(1, 0, 8).unwrap();
    assert!(rig.ch.wait(h.id, u64::MAX));
    let agent = rig.agent.take().unwrap();
    agent.set_paused(true);
    while !agent.is_parked() {
        std::thread::yield_now();
    }

    let w = rig.ch.async_write(1, 4096, b"takeover").unwrap();
    assert!(matches!(
        rig.ch.wait_timeout(w, 200_000),
        Err(WaitError::EngineStalled { .. })
    ));
    assert_eq!(rig.ch.fence_engine(), 1);
    let standby = rig.standby();
    assert!(rig.ch.wait(w, u64::MAX));
    assert_eq!(rig.pool_mem.read_vec(4096, 8).unwrap(), b"takeover");

    // Thaw the zombie: it fences itself and executes nothing further.
    agent.set_paused(false);
    let zombie = agent.join();
    assert!(
        zombie.fenced,
        "zombie must observe the fence and stand down"
    );
    assert_eq!(zombie.writes_executed, 0);
    assert_eq!(zombie.reads_executed, 1, "only the pre-freeze read");

    let st = standby.stop();
    assert_eq!(st.adoptions, 1);
    assert_eq!(st.writes_executed, 1, "the write applies exactly once");
    assert_eq!(rig.ch.engine_epoch(), 1);
}

//! End-to-end engine failover over the real-thread emulated fabric: a
//! Cowbird-Spot agent is killed (or frozen) mid-workload, the client detects
//! the stall, fences the dead epoch, and attaches a standby that adopts the
//! channel from the red bookkeeping block. Every request must complete
//! exactly once, reads must still observe the writes that precede them in
//! issue order, and a zombie predecessor must be rejected by the epoch
//! fence.

use cowbird::channel::Channel;
use cowbird::error::WaitError;
use cowbird::layout::ChannelLayout;
use cowbird::poll::PollGroup;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird::reqid::OpType;
use cowbird_engine::core::EngineConfig;
use cowbird_engine::spot::{SpotAgent, SpotWiring};
use rdma::emu::{EmuFabric, EmuNic};
use rdma::mem::{Region, Rkey};
use telemetry::{Component, EventKind, Telemetry};

/// Flight-recorder node ids for this deployment.
const NODE_COMPUTE: u16 = 0;
const NODE_ENGINE: u16 = 1;
const NODE_POOL: u16 = 2;
const NODE_STANDBY: u16 = 3;

/// One channel plus the spare parts needed to attach standby engines.
struct Rig {
    fabric: EmuFabric,
    ch: Channel,
    pool_mem: Region,
    agent: Option<SpotAgent>,
    compute: EmuNic,
    pool: EmuNic,
    channel_rkey: Rkey,
    /// The primary engine's rkey for the pool region — revoked on fencing.
    pool_rkey: Rkey,
    layout: ChannelLayout,
    telemetry: Telemetry,
}

impl Rig {
    /// Attach a standby engine on a fresh NIC (a different VM): new QPs to
    /// the compute node and the pool, adopting the channel from the red
    /// block. The standby registers its *own* rkey for the pool region —
    /// fencing revokes the predecessor's rkey, so the old handle must not
    /// be reused.
    fn standby(&mut self) -> SpotAgent {
        let nic = self.fabric.add_nic();
        let (c_qpn, _) = self.fabric.connect(&nic, &self.compute);
        let (p_qpn, _) = self.fabric.connect(&nic, &self.pool);
        let rkey = self.pool.register(self.pool_mem.clone());
        let mut regions = RegionMap::new();
        regions.insert(
            1,
            RemoteRegion {
                rkey,
                base: 0,
                size: 1 << 20,
            },
        );
        SpotAgent::spawn_standby(
            SpotWiring {
                nic,
                compute_qpn: c_qpn,
                pool_qpn: p_qpn,
                channel_rkey: self.channel_rkey,
            },
            EngineConfig::spot(self.layout, regions, 16)
                .with_recorder(self.telemetry.recorder(NODE_STANDBY, "standby"))
                .with_channel_id(0),
        )
    }

    /// Pool-side fence: revoke the primary engine's rkey so a zombie's
    /// one-sided verbs fail closed at the responder.
    fn revoke_primary_rkey(&self) -> bool {
        self.pool.revoke_rkey(self.pool_rkey)
    }
}

fn deploy() -> Rig {
    let telemetry = Telemetry::new(4096);
    let mut fabric = EmuFabric::new();
    let compute = fabric.add_nic();
    let engine = fabric.add_nic();
    let pool = fabric.add_nic();
    pool.set_recorder(telemetry.recorder(NODE_POOL, "pool"));

    let pool_mem = Region::new(1 << 20);
    let pool_rkey = pool.register(pool_mem.clone());
    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );
    let layout = ChannelLayout::default_sizes();
    let mut ch = Channel::new(0, layout, regions.clone());
    ch.set_recorder(telemetry.recorder(NODE_COMPUTE, "compute"));
    let channel_rkey = compute.register(ch.region().clone());

    let (eng_c, _) = fabric.connect(&engine, &compute);
    let (eng_p, _) = fabric.connect(&engine, &pool);
    let agent = SpotAgent::spawn(
        SpotWiring {
            nic: engine,
            compute_qpn: eng_c,
            pool_qpn: eng_p,
            channel_rkey,
        },
        EngineConfig::spot(layout, regions, 16)
            .with_recorder(telemetry.recorder(NODE_ENGINE, "engine"))
            .with_channel_id(0),
    );
    Rig {
        fabric,
        ch,
        pool_mem,
        agent: Some(agent),
        compute,
        pool,
        channel_rkey,
        pool_rkey,
        layout,
        telemetry,
    }
}

/// Kill the primary mid-workload with requests in flight; the client
/// detects the stall, fences, attaches a standby, and every one of the
/// pipelined write+read pairs completes exactly once with read-after-write
/// intact across the takeover.
#[test]
fn kill_mid_workload_standby_completes_everything_exactly_once() {
    const PAIRS: u64 = 64;
    let mut rig = deploy();
    let mut group = PollGroup::new();
    let mut reads = Vec::new();

    let issue_pair = |ch: &mut Channel, group: &mut PollGroup, reads: &mut Vec<_>, i: u64| {
        let addr = i * 64;
        let w = ch
            .async_write(1, addr, &(i ^ 0xABCD).to_le_bytes())
            .unwrap();
        let r = ch.async_read(1, addr, 8).unwrap();
        group.add(w);
        group.add(r.id);
        reads.push((i, r));
    };

    // First tranche; wait until the engine is demonstrably mid-stream.
    for i in 0..20 {
        issue_pair(&mut rig.ch, &mut group, &mut reads, i);
    }
    while {
        rig.ch.refresh();
        rig.ch.progress(OpType::Read) < 5
    } {
        std::thread::yield_now();
    }

    // Revocation without warning: in-flight work is abandoned.
    let dead = rig.agent.take().unwrap().kill();
    assert!(!dead.fenced, "killed, not fenced");

    // Keep issuing against the dead engine.
    for i in 20..PAIRS {
        issue_pair(&mut rig.ch, &mut group, &mut reads, i);
    }

    // Collect until the progress-stall watchdog trips.
    let mut done = 0usize;
    let total = 2 * PAIRS as usize;
    loop {
        match group.poll_wait_timeout(&mut rig.ch, total - done, 200_000) {
            Ok(ids) => done += ids.len(),
            Err(WaitError::EngineStalled { .. }) => break,
            Err(e) => panic!("unexpected wait error: {e}"),
        }
        assert!(done < total, "dead engine cannot finish the workload");
    }

    // The stall is the flight-recorder moment: persist the last events from
    // every node's ring and check the dump is usable forensics — valid
    // Chrome trace JSON covering both sides of the failure.
    let json_path = rig
        .telemetry
        .write_flight_dump("kill_mid_workload")
        .expect("flight dump must persist");
    let dump = rig.telemetry.dump();
    telemetry::json::validate(&dump.to_chrome_json()).expect("chrome trace must be valid JSON");
    telemetry::json::validate(&std::fs::read_to_string(&json_path).unwrap())
        .expect("persisted dump must be valid JSON");
    let nodes = dump.nodes_seen();
    assert!(
        nodes.contains(&NODE_COMPUTE) && nodes.contains(&NODE_ENGINE),
        "dump must span both nodes, got {nodes:?}"
    );
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == EventKind::EngineStalled && e.node == NODE_COMPUTE),
        "the watchdog trip itself must be on record"
    );

    // Fence the dead epoch and fail over.
    assert_eq!(rig.ch.fence_engine(), 1);
    let standby = rig.standby();
    while done < total {
        match group.poll_wait_timeout(&mut rig.ch, total - done, 200_000) {
            Ok(ids) => done += ids.len(),
            // The standby may still be adopting; keep waiting.
            Err(WaitError::EngineStalled { .. }) => continue,
            Err(e) => panic!("unexpected wait error: {e}"),
        }
    }

    // Read-after-write holds across the takeover.
    for (i, r) in &reads {
        let v = rig.ch.take_response(r).unwrap();
        assert_eq!(
            u64::from_le_bytes(v.try_into().unwrap()),
            i ^ 0xABCD,
            "pair {i}"
        );
    }
    // Exactly once: progress counters land exactly on the issue counts and
    // the pool holds every final value.
    rig.ch.refresh();
    assert_eq!(rig.ch.progress(OpType::Read), PAIRS);
    assert_eq!(rig.ch.progress(OpType::Write), PAIRS);
    assert_eq!(rig.ch.engine_epoch(), 1, "takeover epoch must be visible");
    for i in 0..PAIRS {
        let v = rig.pool_mem.read_vec(i * 64, 8).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i ^ 0xABCD);
    }
    let st = standby.stop();
    assert_eq!(st.adoptions, 1);
    assert!(!st.fenced);
}

/// A frozen (not dead) primary: the standby takes over, and when the zombie
/// thaws its first probe sees the client fence word above its epoch — it
/// stands down without completing anything post-takeover.
#[test]
fn thawed_zombie_is_fenced_out_after_takeover() {
    let mut rig = deploy();
    // Warm up, then freeze.
    let h = rig.ch.async_read(1, 0, 8).unwrap();
    assert!(rig.ch.wait(h.id, u64::MAX));
    let agent = rig.agent.take().unwrap();
    agent.set_paused(true);
    while !agent.is_parked() {
        std::thread::yield_now();
    }

    let w = rig.ch.async_write(1, 4096, b"takeover").unwrap();
    assert!(matches!(
        rig.ch.wait_timeout(w, 200_000),
        Err(WaitError::EngineStalled { .. })
    ));
    assert_eq!(rig.ch.fence_engine(), 1);
    // Pool-side fence rides along with the client-side epoch bump: the
    // frozen primary's rkey is revoked, so even a zombie that somehow
    // missed the fence word would have its pool verbs NAK'd at the
    // responder. The standby registers its own rkey and is unaffected.
    assert!(rig.revoke_primary_rkey(), "primary rkey was registered");
    let standby = rig.standby();
    assert!(rig.ch.wait(w, u64::MAX));
    assert_eq!(rig.pool_mem.read_vec(4096, 8).unwrap(), b"takeover");

    // Thaw the zombie: it fences itself and executes nothing further.
    agent.set_paused(false);
    let zombie = agent.join();
    assert!(
        zombie.fenced,
        "zombie must observe the fence and stand down"
    );
    assert_eq!(zombie.writes_executed, 0);
    assert_eq!(zombie.reads_executed, 1, "only the pre-freeze read");

    let st = standby.stop();
    assert_eq!(st.adoptions, 1);
    assert_eq!(st.writes_executed, 1, "the write applies exactly once");
    assert_eq!(rig.ch.engine_epoch(), 1);

    // The takeover story is on the flight recorder: revocation on the pool
    // node, the zombie's own fence observation on the engine node, and the
    // standby's adoption.
    let dump = rig.telemetry.dump();
    assert!(
        dump.events.iter().any(|e| e.kind == EventKind::RkeyRevoked
            && e.node == NODE_POOL
            && e.component == Component::Pool
            && e.a == rig.pool_rkey as u64),
        "rkey revocation must be on record"
    );
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == EventKind::FenceObserved && e.node == NODE_ENGINE),
        "the zombie's fence observation must be on record"
    );
    assert!(
        dump.events
            .iter()
            .any(|e| e.kind == EventKind::Adopted && e.node == NODE_STANDBY),
        "the standby's adoption must be on record"
    );
}

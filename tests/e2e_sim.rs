//! End-to-end integration over the packet-level simulator: both engine
//! variants, fault injection, and multi-instance probe multiplexing.

use cowbird::channel::Channel;
use cowbird::layout::ChannelLayout;
use cowbird::region::{RegionMap, RemoteRegion};
use cowbird_engine::core::{EngineConfig, EngineVariant};
use cowbird_engine::sim::{ComputeNicNode, EngineNode, PoolNode};
use experiments::harness::{build_cowbird_rig, CowbirdClientNode, CowbirdRig};
use rdma::mem::Region;
use simnet::link::LinkParams;
use simnet::sim::{NodeId, Sim};
use simnet::time::{Duration, Instant};

#[test]
fn both_variants_complete_identical_workloads() {
    for batch in [1usize, 16] {
        let (mut sim, cid, eid) = build_cowbird_rig(CowbirdRig {
            seed: 5,
            record_size: 128,
            inflight: 16,
            target_ops: 300,
            engine_batch: batch,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_millis(100).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        assert_eq!(client.completed(), 300, "batch {batch}");
        let engine: &EngineNode = sim.node_ref(eid);
        let stats = engine.core(0).stats;
        assert_eq!(stats.reads_executed, 300);
        if batch == 1 {
            assert_eq!(
                engine.core(0).config().variant,
                EngineVariant::P4,
                "unbatched rig models the switch"
            );
        }
    }
}

#[test]
fn heavy_loss_and_corruption_recovered_by_gbn() {
    let link = LinkParams::rack_100g()
        .with_drop_probability(0.02)
        .with_corrupt_probability(0.01);
    let (mut sim, cid, _eid) = build_cowbird_rig(CowbirdRig {
        seed: 9,
        record_size: 64,
        inflight: 4,
        target_ops: 120,
        engine_batch: 4,
        link,
        ..Default::default()
    });
    sim.run_until(Some(Instant(Duration::from_secs(1).nanos())));
    let client: &CowbirdClientNode = sim.node_ref(cid);
    assert_eq!(client.completed(), 120, "no op may be lost");
}

#[test]
fn deterministic_across_runs() {
    let run = |seed| {
        let (mut sim, cid, _e) = build_cowbird_rig(CowbirdRig {
            seed,
            record_size: 64,
            inflight: 8,
            target_ops: 100,
            engine_batch: 8,
            drop_probability: 0.01,
            ..Default::default()
        });
        sim.run_until(Some(Instant(Duration::from_secs(1).nanos())));
        let client: &CowbirdClientNode = sim.node_ref(cid);
        (
            client.latency.median(),
            client.latency.p99(),
            sim.events_processed(),
        )
    };
    assert_eq!(run(77), run(77), "same seed, same world");
    assert_ne!(run(77), run(78), "different seed, different world");
}

/// Two instances (two channels, one per "application") sharing one engine
/// node — §5.4's multiplexing.
#[test]
fn two_instances_share_one_engine() {
    let mut sim = Sim::new(31);
    let compute_id = NodeId(0);
    let engine_id = NodeId(1);
    let pool_id = NodeId(2);

    let pool_mem = Region::new(1 << 20);
    for i in 0..(1 << 14) {
        pool_mem.write(i * 64, &i.to_le_bytes()).unwrap();
    }
    let mut pool = PoolNode::new();
    let pool_rkey = pool.register(pool_mem);
    pool.create_qp(201, 102, engine_id);
    pool.create_qp(202, 112, engine_id);

    let mut regions = RegionMap::new();
    regions.insert(
        1,
        RemoteRegion {
            rkey: pool_rkey,
            base: 0,
            size: 1 << 20,
        },
    );

    let layout = ChannelLayout::default_sizes();
    let mut compute = ComputeNicNode::new();
    let mut ch_a = Channel::new(0, layout, regions.clone());
    let mut ch_b = Channel::new(1, layout, regions.clone());
    let rkey_a = compute.register(ch_a.region().clone());
    let rkey_b = compute.register(ch_b.region().clone());
    compute.create_qp(301, 101, engine_id);
    compute.create_qp(302, 103, engine_id);
    compute.create_qp(311, 111, engine_id);
    compute.create_qp(312, 113, engine_id);

    let mut engine = EngineNode::new();
    engine.add_instance(
        EngineConfig::spot(layout, regions.clone(), 8),
        compute_id,
        pool_id,
        (101, 301, 102, 201, 103, 302),
        rkey_a,
    );
    engine.add_instance(
        EngineConfig::spot(layout, regions, 8),
        compute_id,
        pool_id,
        (111, 311, 112, 202, 113, 312),
        rkey_b,
    );

    sim.add_node(Box::new(compute));
    sim.add_node(Box::new(engine));
    sim.add_node(Box::new(pool));
    sim.connect(compute_id, engine_id, LinkParams::rack_100g());
    sim.connect(engine_id, pool_id, LinkParams::rack_100g());

    // Both channels issue interleaved work from outside the sim.
    let ha: Vec<_> = (0..32u64)
        .map(|i| ch_a.async_read(1, i * 64, 8).unwrap())
        .collect();
    let hb: Vec<_> = (0..32u64)
        .map(|i| ch_b.async_read(1, (i + 100) * 64, 8).unwrap())
        .collect();
    sim.run_for(Duration::from_millis(5));

    for (i, h) in ha.iter().enumerate() {
        assert!(ch_a.is_complete(h.id), "instance A op {i}");
        let v = ch_a.take_response(h).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i as u64);
    }
    for (i, h) in hb.iter().enumerate() {
        assert!(ch_b.is_complete(h.id), "instance B op {i}");
        let v = ch_b.take_response(h).unwrap();
        assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), (i + 100) as u64);
    }
    let engine: &EngineNode = sim.node_ref(engine_id);
    assert_eq!(engine.core(0).stats.reads_executed, 32);
    assert_eq!(engine.core(1).stats.reads_executed, 32);
}

#[test]
fn probe_priority_keeps_link_utilization_low_when_idle() {
    // An idle channel generates only probe traffic, all at priority 7;
    // the link's high-priority classes stay untouched.
    let (mut sim, _cid, _eid) = build_cowbird_rig(CowbirdRig {
        seed: 3,
        // Never reachable: the client stays idle (inflight 0) so only the
        // engine's probe traffic exists.
        target_ops: u64::MAX,
        inflight: 0,
        ..Default::default()
    });
    sim.run_for(Duration::from_millis(2));
    // Link 0 is compute->engine; link 1 engine->compute (probe requests).
    let stats = sim.link_stats(simnet::link::LinkId(1));
    let high: u64 = (0..7).map(|p| stats.busy_by_prio[p].nanos()).sum();
    let low = stats.busy_by_prio[7].nanos();
    assert_eq!(high, 0, "idle engine must only emit lowest-priority probes");
    assert!(low > 0, "probes must flow");
}

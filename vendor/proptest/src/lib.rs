//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests actually use: the `proptest!`
//! macro, `Strategy` with `prop_map`, `Just`, `any`, integer / float range
//! strategies, tuple and `collection::vec` composition, `prop_oneof!`, and
//! `prop_assert*!`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! - **Deterministic seeding.** The RNG is seeded from the test's module
//!   path and name, so every run explores the same cases — which is what a
//!   CI reproduction wants anyway.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Run-time configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// SplitMix64 seeded from the test name (FNV-1a hash): fast, portable,
    /// and stable across runs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::PhantomData;
    use super::{Range, RangeInclusive};

    /// A recipe for generating values of one type. Unlike the real crate
    /// there is no value tree: `new_value` draws a fresh sample directly.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, mapper: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                strategy: self,
                mapper,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    // `&S` is a strategy too, so strategies can be reused by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        strategy: S,
        mapper: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.mapper)(self.strategy.new_value(rng))
        }
    }

    /// Uniform choice among boxed strategies (what `prop_oneof!` builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].new_value(rng)
        }
    }

    /// Types with a default "any value" strategy (`any::<T>()`).
    pub trait ArbValue {
        fn arb_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbValue> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arb_value(rng)
        }
    }

    pub fn any<T: ArbValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl ArbValue for bool {
        fn arb_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl ArbValue for $t {
                fn arb_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo).wrapping_add(1);
                    // span == 0 means the full u64 domain.
                    lo.wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbValue for f64 {
        fn arb_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run their body over generated inputs.
///
/// Accepted shape (a subset of the real macro):
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$attr:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategy arms that share a `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Color {
        Red,
        Green,
        Blue(u8),
    }

    fn arb_color() -> impl Strategy<Value = Color> {
        prop_oneof![
            Just(Color::Red),
            Just(Color::Green),
            (0u8..255).prop_map(Color::Blue),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 5u8..=9, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (1u64..100, any::<bool>()),
            items in collection::vec((0u32..50, any::<u8>()), 1..10),
        ) {
            prop_assert!(pair.0 >= 1 && pair.0 < 100);
            prop_assert!(!items.is_empty() && items.len() < 10);
            for (a, _b) in items {
                prop_assert!(a < 50);
            }
        }

        #[test]
        fn oneof_samples_all_arms(colors in collection::vec(arb_color(), 64..65)) {
            // With 64 draws across 3 uniform arms, each arm should appear.
            prop_assert!(colors.contains(&Color::Red));
            prop_assert!(colors.contains(&Color::Green));
            prop_assert!(colors.iter().any(|c| matches!(c, Color::Blue(_))));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("beta");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small harness subset its benches use: `Criterion` with the
//! builder knobs, `bench_function` / `benchmark_group`, and `Bencher::iter`
//! / `iter_batched` / `iter_batched_ref`. Reporting is a single line of
//! mean ns/iter — no statistics engine, no HTML, no comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized; accepted for API compatibility (the
/// shim always materializes one input per routine call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    target_time: Duration,
    /// Mean nanoseconds per iteration, filled in by the iter calls.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn run<F: FnMut()>(&mut self, mut once: F) {
        // Warm up briefly, then time batches until the target elapses.
        let warm_until = Instant::now() + self.target_time / 10;
        while Instant::now() < warm_until {
            once();
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.target_time {
            let t0 = Instant::now();
            for _ in 0..64 {
                once();
            }
            spent += t0.elapsed();
            iters += 64;
        }
        self.iters = iters;
        self.mean_ns = if iters == 0 {
            0.0
        } else {
            spent.as_nanos() as f64 / iters as f64
        };
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            black_box(routine());
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            black_box(routine(input));
        });
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.run(|| {
            let mut input = setup();
            black_box(routine(&mut input));
        });
    }
}

/// Top-level harness. Builder methods mirror the real crate.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(50),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Spread the measurement budget over the configured samples but keep
        // each bench fast: the shim is for smoke-running, not statistics.
        let per_bench =
            (self.measurement_time / self.sample_size as u32).max(Duration::from_millis(20));
        let mut b = Bencher {
            target_time: per_bench + self.warm_up_time / self.sample_size as u32,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!("{name:<40} {:>12.1} ns/iter ({} iters)", b.mean_ns, b.iters);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(40));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("group");
        g.bench_function("batched", |b| {
            b.iter_batched_ref(
                || vec![0u8; 32],
                |v| v.iter().sum::<u8>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `Mutex::lock`,
//! `RwLock::read` / `RwLock::write`, all panic-free on poison (parking_lot
//! locks are not poisonable, so a poisoned std lock is simply recovered).

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never fails (poison is swallowed, as in parking_lot).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose guards never fail on poison.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

//! Offline stand-in for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! Only the `channel` module surface used by this workspace is provided:
//! `unbounded`, `Sender::send`, `Receiver::recv` / `recv_timeout`, and the
//! matching error types.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel. Clone freely across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// The channel is disconnected (all receivers dropped).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
